package p2psbind

import (
	"context"
	"fmt"
	"sync"
	"time"

	"wspeer/internal/binding"
	"wspeer/internal/core"
	"wspeer/internal/engine"
	"wspeer/internal/exchange"
	"wspeer/internal/p2ps"
	"wspeer/internal/pipeline"
	"wspeer/internal/resilience"
	"wspeer/internal/soap"
	"wspeer/internal/transport"
	"wspeer/internal/wsaddr"
	"wspeer/internal/wsdl"
	"wspeer/internal/xmlutil"
)

// Pipe names the binding uses within a service advertisement.
const (
	// RequestPipeName is the pipe invocations are sent down.
	RequestPipeName = "requests"
	// DefinitionPipeName is the pipe the WSDL is retrieved from — the
	// "definition pipe" extension the paper adds to P2PS service adverts.
	DefinitionPipeName = "definition"
	// CallbackPipeName is the persistent input pipe a consumer hosts to
	// receive decoupled callback replies (core.CallbackHoster).
	CallbackPipeName = "callback-replies"
)

// Options configures the P2PS binding.
type Options struct {
	// Engine hosts the services (a fresh engine when nil).
	Engine *engine.Engine
	// Peer is the underlying P2PS peer (required).
	Peer *p2ps.Peer
	// DiscoveryTimeout bounds Locate calls (default 2s).
	DiscoveryTimeout time.Duration
	// ReplyTimeout bounds waits on reply pipes (default 10s).
	ReplyTimeout time.Duration
	// Retries is how many times an unanswered request is retransmitted
	// before ReplyTimeout expires (default 2, 0 disables). Retransmission
	// is safe because providers suppress duplicate MessageIDs and replay
	// the original response.
	Retries int
}

// EndpointAttr is the advertisement attribute carrying a foreign
// deployment's endpoint URI when the P2PS publisher announces a service it
// did not itself deploy (e.g. an HTTP-hosted service advertised over the
// overlay). Locate surfaces such adverts with that endpoint, so a mixed
// client can discover over P2PS and invoke over the endpoint's own scheme.
const EndpointAttr = "endpoint"

// Binding bundles the P2PS implementation's components. The generic
// attach/detach choreography and event forwarding come from the embedded
// binding.Base; only the pipe substrate specifics live here.
type Binding struct {
	*binding.Base
	pp               *p2ps.Peer
	discoveryTimeout time.Duration
	replyTimeout     time.Duration
	retries          int

	mu          sync.Mutex
	deployed    map[string]*deployedService
	foreignPubs map[string]*deployedService // advert ID -> definition-pipe state
	advertAttrs map[string]map[string]string
	closed      bool

	// inflight counts pipe dispatches in progress so Close can drain them.
	inflight sync.WaitGroup

	// Duplicate suppression: requests are retransmitted on loss, so each
	// deployed service remembers recent MessageIDs and their responses.
	dedupMu    sync.Mutex
	dedupByID  map[string][]byte // MessageID -> serialized reply ("" while in flight)
	dedupOrder []string
}

// dedupCap bounds the duplicate-suppression window.
const dedupCap = 4096

// deployedService is the binding-private deployment state.
type deployedService struct {
	name      string
	reqPipe   *p2ps.InputPipe
	defPipe   *p2ps.InputPipe
	wsdlBytes []byte
}

// New builds the binding over an existing P2PS peer.
func New(opts Options) (*Binding, error) {
	if opts.Peer == nil {
		return nil, fmt.Errorf("p2psbind: options need a P2PS peer")
	}
	if opts.Engine == nil {
		opts.Engine = engine.New()
	}
	if opts.DiscoveryTimeout <= 0 {
		opts.DiscoveryTimeout = 2 * time.Second
	}
	if opts.ReplyTimeout <= 0 {
		opts.ReplyTimeout = 10 * time.Second
	}
	if opts.Retries == 0 {
		opts.Retries = 2
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	}
	b := &Binding{
		pp:               opts.Peer,
		discoveryTimeout: opts.DiscoveryTimeout,
		replyTimeout:     opts.ReplyTimeout,
		retries:          opts.Retries,
		deployed:         make(map[string]*deployedService),
		foreignPubs:      make(map[string]*deployedService),
		advertAttrs:      make(map[string]map[string]string),
		dedupByID:        make(map[string][]byte),
	}
	b.Base = binding.NewBase("p2ps", []string{core.P2PSScheme}, opts.Engine, binding.Components{
		Deployer:   b.Deployer(),
		Publishers: []core.ServicePublisher{b.Publisher()},
		Locators:   []core.ServiceLocator{b.Locator()},
		Invokers:   []core.Invoker{b.Invoker()},
	})
	// Every P2PS request carries a non-anonymous ReplyTo (a pipe-advert
	// EPR), so with this sender registered the engine delivers replies
	// itself; the legacy reply path in handleRequest remains as a fallback.
	opts.Engine.RegisterReplySender(core.P2PSScheme, b.ReplySender())
	return b, nil
}

// ReplySender delivers decoupled replies by resolving the reply EPR's pipe
// advertisement and writing the message down a fresh output pipe. Each
// reply is also recorded in the duplicate-suppression window keyed by the
// request MessageID it relates to, so a retransmitted request replays the
// same response instead of being redispatched. Register it on another
// binding's engine to let that substrate answer requests whose ReplyTo is
// a P2PS pipe.
func (b *Binding) ReplySender() engine.ReplySender {
	return engine.ReplySenderFunc(func(ctx context.Context, to *wsaddr.EndpointReference, msg *exchange.Message) error {
		if msg.Headers != nil && msg.Headers.RelatesTo != "" {
			b.dedupStore(msg.Headers.RelatesTo, msg.Body)
		}
		pipe, err := EPRToPipe(to)
		if err != nil {
			return err
		}
		out, err := b.openPipe(pipe)
		if err != nil {
			return err
		}
		return out.Send(msg.Body)
	})
}

// Peer exposes the underlying P2PS peer.
func (b *Binding) Peer() *p2ps.Peer { return b.pp }

// enter marks a pipe dispatch in flight; it reports false once the binding
// has been closed, in which case the dispatch must be dropped.
func (b *Binding) enter() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return false
	}
	b.inflight.Add(1)
	return true
}

// Close stops the binding's substrate: every deployed service's pipes are
// closed (foreign-publication definition pipes included), the services are
// undeployed from the engine, and in-flight pipe dispatches are drained.
// Close is idempotent.
func (b *Binding) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	deployed := b.deployed
	foreign := b.foreignPubs
	b.deployed = make(map[string]*deployedService)
	b.foreignPubs = make(map[string]*deployedService)
	b.mu.Unlock()

	for _, ds := range deployed {
		if ds.reqPipe != nil {
			ds.reqPipe.Close()
		}
		if ds.defPipe != nil {
			ds.defPipe.Close()
		}
		b.Engine().Undeploy(ds.name)
	}
	for _, ds := range foreign {
		if ds.defPipe != nil {
			ds.defPipe.Close()
		}
	}
	b.inflight.Wait()
	return nil
}

// ---------------------------------------------------------------------------
// Deployer

type deployer struct{ b *Binding }

// Deployer returns the pipe-based deployer.
func (b *Binding) Deployer() core.ServiceDeployer { return deployer{b} }

// Name implements core.ServiceDeployer.
func (d deployer) Name() string { return "p2ps" }

// Deploy implements core.ServiceDeployer: the service gets a request pipe
// and a definition pipe, and its WSDL is bound to its p2ps:// URI.
func (d deployer) Deploy(def engine.ServiceDef) (*core.Deployment, error) {
	b := d.b
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, fmt.Errorf("p2psbind: binding is closed")
	}
	b.mu.Unlock()
	svc, err := b.Engine().Deploy(def)
	if err != nil {
		return nil, err
	}
	cleanup := func() { b.Engine().Undeploy(def.Name) }

	reqPipe, err := b.pp.CreateInputPipe(RequestPipeName)
	if err != nil {
		cleanup()
		return nil, err
	}
	defPipe, err := b.pp.CreateInputPipe(DefinitionPipeName)
	if err != nil {
		reqPipe.Close()
		cleanup()
		return nil, err
	}
	endpoint := core.P2PSURI{Peer: string(b.pp.ID()), Service: def.Name}.String()
	defs, err := svc.WSDL(wsdl.TransportP2PS, endpoint)
	if err != nil {
		reqPipe.Close()
		defPipe.Close()
		cleanup()
		return nil, err
	}
	raw, err := defs.Marshal()
	if err != nil {
		reqPipe.Close()
		defPipe.Close()
		cleanup()
		return nil, err
	}
	ds := &deployedService{name: def.Name, reqPipe: reqPipe, defPipe: defPipe, wsdlBytes: raw}
	reqPipe.AddListener(func(from p2ps.PeerID, data []byte) {
		if !b.enter() {
			return
		}
		defer b.inflight.Done()
		b.handleRequest(ds, data)
	})
	defPipe.AddListener(func(from p2ps.PeerID, data []byte) {
		if !b.enter() {
			return
		}
		defer b.inflight.Done()
		b.handleDefinitionRequest(ds, data)
	})

	b.mu.Lock()
	b.deployed[def.Name] = ds
	b.mu.Unlock()
	return &core.Deployment{
		Service:     svc,
		Endpoint:    endpoint,
		Definitions: defs,
		Deployer:    "p2ps",
		Extra:       ds,
	}, nil
}

// Undeploy implements core.ServiceDeployer.
func (d deployer) Undeploy(service string) error {
	b := d.b
	b.mu.Lock()
	ds := b.deployed[service]
	delete(b.deployed, service)
	b.mu.Unlock()
	if ds == nil {
		return fmt.Errorf("p2psbind: service %q not deployed", service)
	}
	ds.reqPipe.Close()
	ds.defPipe.Close()
	if !b.Engine().Undeploy(service) {
		return fmt.Errorf("p2psbind: engine had no service %q", service)
	}
	return nil
}

// handleRequest implements the provider side of figures 5/6: parse the
// SOAP request, dispatch it through the engine, and send the response down
// the pipe advertised in the request's ReplyTo header.
// dedupCheck returns (replay, done): when done is true the request is a
// duplicate — replay (possibly nil for one-way/in-flight) is what should be
// resent. When done is false the MessageID has been marked in flight.
func (b *Binding) dedupCheck(id string) (replay []byte, done bool) {
	if id == "" {
		return nil, false // unidentified requests cannot be deduplicated
	}
	b.dedupMu.Lock()
	defer b.dedupMu.Unlock()
	if reply, seen := b.dedupByID[id]; seen {
		return reply, true
	}
	if len(b.dedupOrder) >= dedupCap {
		oldest := b.dedupOrder[0]
		b.dedupOrder = b.dedupOrder[1:]
		delete(b.dedupByID, oldest)
	}
	b.dedupByID[id] = nil // in flight
	b.dedupOrder = append(b.dedupOrder, id)
	return nil, false
}

func (b *Binding) dedupStore(id string, reply []byte) {
	if id == "" {
		return
	}
	b.dedupMu.Lock()
	defer b.dedupMu.Unlock()
	if _, seen := b.dedupByID[id]; seen {
		b.dedupByID[id] = reply
	}
}

func (b *Binding) handleRequest(ds *deployedService, data []byte) {
	env, err := soap.Parse(data)
	if err != nil {
		return // no way to reply to an unparseable request
	}
	hdr, err := wsaddr.FromEnvelope(env)
	if err != nil {
		return
	}
	// Duplicate suppression: a retransmitted request replays the original
	// response rather than re-invoking the operation.
	if replay, dup := b.dedupCheck(hdr.MessageID); dup {
		if len(replay) > 0 && hdr.ReplyTo != nil {
			b.sendToEPR(hdr.ReplyTo, replay)
		}
		return
	}
	req := &transport.Request{
		Endpoint:    hdr.To,
		Action:      hdr.Action,
		ContentType: soap.ContentType,
		Body:        data,
	}
	// Adopt the caller's propagated deadline (the envelope-substrate twin
	// of the HTTP X-Wspeer-Deadline header): the engine drops dispatches
	// the caller has already abandoned instead of answering into the void.
	ctx := context.Background()
	if dlHdr := env.Header(xmlutil.N(transport.DeadlineNS, transport.DeadlineElement)); dlHdr != nil {
		if dl, ok := transport.ParseDeadline(dlHdr.TrimmedText()); ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, dl)
			defer cancel()
		}
	}
	resp, err := b.Engine().ServeRequest(ctx, ds.name, req)
	if err != nil {
		f := soap.ServerFault(err)
		if o, ok := resilience.AsOverload(err); ok {
			// The P2PS equivalent of HTTP 503 + Retry-After: a Server
			// fault whose detail advertises the backoff in seconds.
			f = o.Fault()
		}
		resp = &transport.Response{
			Body:    soap.NewEnvelope().SetFault(f).Marshal(),
			Faulted: true,
		}
	}
	if len(resp.Body) == 0 {
		return // one-way; the dedup entry stays nil so duplicates are dropped
	}
	replyEnv, err := soap.Parse(resp.Body)
	if err != nil {
		return
	}
	// Faults are routed to FaultTo when the request carries one; normal
	// responses (and faults without a FaultTo) go to ReplyTo.
	target := hdr.ReplyTo
	if replyEnv.IsFault() && hdr.FaultTo != nil {
		target = hdr.FaultTo
	}
	if target == nil {
		return // nowhere to reply
	}
	replyHdr := wsaddr.HeadersFor(target, hdr.Action+"#response")
	replyHdr.RelatesTo = hdr.MessageID
	if err := replyHdr.Apply(replyEnv); err != nil {
		return
	}
	wire := replyEnv.Marshal()
	b.dedupStore(hdr.MessageID, wire)
	b.sendToEPR(target, wire)
}

// handleDefinitionRequest serves the WSDL down the requester's reply pipe:
// the service advert's definition pipe is the channel "from which the
// service definition (WSDL in our case) can be retrieved".
func (b *Binding) handleDefinitionRequest(ds *deployedService, data []byte) {
	env, err := soap.Parse(data)
	if err != nil {
		return
	}
	hdr, err := wsaddr.FromEnvelope(env)
	if err != nil || hdr.ReplyTo == nil {
		return
	}
	b.sendToEPR(hdr.ReplyTo, ds.wsdlBytes)
}

// openPipe opens an output pipe, falling back to an in-network endpoint
// resolution when the owning peer's address is not locally cached (e.g.
// the advert was relayed by a third party, or the EPR arrived detached
// from any discovery).
func (b *Binding) openPipe(adv *p2ps.PipeAdvertisement) (*p2ps.OutputPipe, error) {
	out, err := b.pp.OpenOutputPipe(adv)
	if err == nil {
		return out, nil
	}
	op := b.pp.ResolvePeer(adv.Peer, b.replyTimeout)
	<-op.Done()
	if _, ok := op.Result(); !ok {
		return nil, fmt.Errorf("p2psbind: cannot resolve peer %s", adv.Peer)
	}
	return b.pp.OpenOutputPipe(adv)
}

// sendToEPR resolves a reply EPR to an output pipe and sends data down it.
func (b *Binding) sendToEPR(epr *wsaddr.EndpointReference, data []byte) {
	pipe, err := EPRToPipe(epr)
	if err != nil {
		return
	}
	out, err := b.openPipe(pipe)
	if err != nil {
		return
	}
	_ = out.Send(data)
}

// ---------------------------------------------------------------------------
// Publisher

type publisher struct{ b *Binding }

// Publisher returns the advert publisher.
func (b *Binding) Publisher() core.ServicePublisher { return publisher{b} }

// Name implements core.ServicePublisher.
func (p publisher) Name() string { return "p2ps-advert" }

// SetAdvertAttrs attaches extra attributes to a service's advertisement
// when it is published, feeding P2PS's attribute-based search. Call it
// before Publish.
func (b *Binding) SetAdvertAttrs(service string, attrs map[string]string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advertAttrs[service] = attrs
}

// Publish implements core.ServicePublisher. A deployment made by the p2ps
// deployer is published as an extended ServiceAdvertisement carrying its
// request and definition pipes. A foreign deployment — made by another
// binding's deployer, the mixed-provider case — is advertised without a
// request pipe: its endpoint URI rides in the EndpointAttr attribute, and
// a definition pipe is created here so discoverers can still retrieve the
// WSDL over the overlay.
func (p publisher) Publish(ctx context.Context, dep *core.Deployment) (string, error) {
	ds, ok := dep.Extra.(*deployedService)
	if !ok {
		return p.b.publishForeign(dep)
	}
	attrs := map[string]string{"binding": "wspeer-p2ps"}
	p.b.mu.Lock()
	for k, v := range p.b.advertAttrs[ds.name] {
		attrs[k] = v
	}
	p.b.mu.Unlock()
	adv := &p2ps.ServiceAdvertisement{
		Name:           ds.name,
		Pipes:          []p2ps.PipeAdvertisement{*ds.reqPipe.Advertisement()},
		DefinitionPipe: ds.defPipe.Advertisement(),
		Attrs:          attrs,
	}
	published, err := p.b.pp.PublishService(adv)
	if err != nil {
		return "", err
	}
	return published.ID, nil
}

// publishForeign advertises a deployment another binding made: no request
// pipe (invocations go to the advertised endpoint over its own scheme),
// but a definition pipe serving the deployment's WSDL.
func (b *Binding) publishForeign(dep *core.Deployment) (string, error) {
	name := dep.Service.Name()
	if dep.Endpoint == "" {
		return "", fmt.Errorf("p2psbind: foreign deployment %q has no endpoint to advertise", name)
	}
	if dep.Definitions == nil {
		return "", fmt.Errorf("p2psbind: foreign deployment %q has no definitions", name)
	}
	raw, err := dep.Definitions.Marshal()
	if err != nil {
		return "", err
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return "", fmt.Errorf("p2psbind: binding is closed")
	}
	b.mu.Unlock()
	defPipe, err := b.pp.CreateInputPipe(DefinitionPipeName)
	if err != nil {
		return "", err
	}
	ds := &deployedService{name: name, defPipe: defPipe, wsdlBytes: raw}
	defPipe.AddListener(func(from p2ps.PeerID, data []byte) {
		if !b.enter() {
			return
		}
		defer b.inflight.Done()
		b.handleDefinitionRequest(ds, data)
	})
	attrs := map[string]string{"binding": "wspeer-p2ps", EndpointAttr: dep.Endpoint}
	b.mu.Lock()
	for k, v := range b.advertAttrs[name] {
		attrs[k] = v
	}
	b.mu.Unlock()
	adv := &p2ps.ServiceAdvertisement{
		Name:           name,
		DefinitionPipe: defPipe.Advertisement(),
		Attrs:          attrs,
	}
	published, err := b.pp.PublishService(adv)
	if err != nil {
		defPipe.Close()
		return "", err
	}
	b.mu.Lock()
	b.foreignPubs[published.ID] = ds
	b.mu.Unlock()
	return published.ID, nil
}

// Unpublish implements core.ServicePublisher.
func (p publisher) Unpublish(ctx context.Context, location string) error {
	b := p.b
	b.mu.Lock()
	ds := b.foreignPubs[location]
	delete(b.foreignPubs, location)
	b.mu.Unlock()
	if ds != nil && ds.defPipe != nil {
		ds.defPipe.Close()
	}
	if !b.pp.UnpublishService(location) {
		return fmt.Errorf("p2psbind: no advert %q", location)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Locator

type locator struct{ b *Binding }

// Locator returns the in-network discovery locator.
func (b *Binding) Locator() core.ServiceLocator { return locator{b} }

// Name implements core.ServiceLocator.
func (l locator) Name() string { return "p2ps" }

// Locate implements core.ServiceLocator: discover adverts, then retrieve
// each service's WSDL through its definition pipe.
func (l locator) Locate(ctx context.Context, q core.ServiceQuery, found func(*core.ServiceInfo)) error {
	b := l.b
	pq := p2ps.Query{Name: q.QueryName()}
	switch qq := q.(type) {
	case core.NameQuery:
		pq.Attrs = qq.Attrs
	case core.ExprQuery:
		pq.Expr = qq.Expr // evaluated in-network by every peer reached
	}
	d := b.pp.Discover(pq, b.discoveryTimeout)
	select {
	case <-d.Done():
	case <-ctx.Done():
		d.Cancel()
		return ctx.Err()
	}
	var firstErr error
	for _, adv := range d.Matches() {
		info, err := b.infoFromAdvert(ctx, adv)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("p2psbind: advert %q: %w", adv.Name, err)
			}
			continue
		}
		found(info)
	}
	return firstErr
}

func (b *Binding) infoFromAdvert(ctx context.Context, adv *p2ps.ServiceAdvertisement) (*core.ServiceInfo, error) {
	defs, err := b.FetchDefinitions(ctx, adv)
	if err != nil {
		return nil, err
	}
	// A foreign advert (no request pipe) carries the service's real endpoint
	// in an attribute: surface that, so invocation is routed by its scheme.
	endpoint := core.P2PSURI{Peer: string(adv.Peer), Service: adv.Name}.String()
	if ep := adv.Attrs[EndpointAttr]; ep != "" && adv.Pipe(RequestPipeName) == nil {
		endpoint = ep
	}
	return &core.ServiceInfo{
		Name:        adv.Name,
		Definitions: defs,
		Endpoint:    endpoint,
		Locator:     "p2ps",
		Meta:        map[string]string{"advertID": adv.ID},
		Extra:       adv,
	}, nil
}

// FetchDefinitions retrieves a service's WSDL through its definition pipe
// using the ReplyTo pattern.
func (b *Binding) FetchDefinitions(ctx context.Context, adv *p2ps.ServiceAdvertisement) (*wsdl.Definitions, error) {
	if adv.DefinitionPipe == nil {
		return nil, fmt.Errorf("advert has no definition pipe")
	}
	reply, err := b.pp.CreateInputPipe("wsdl-reply")
	if err != nil {
		return nil, err
	}
	defer reply.Close()
	ch := make(chan []byte, 1)
	reply.AddListener(func(_ p2ps.PeerID, data []byte) {
		select {
		case ch <- data:
		default:
		}
	})

	env := soap.NewEnvelope()
	env.AddBodyElement(xmlutil.NewElement(xmlutil.N(p2ps.Namespace, "GetDefinition")))
	hdr := wsaddr.HeadersFor(PipeToEPR(adv.DefinitionPipe, adv.Name), ActionFor(adv.Peer, adv.Name, DefinitionPipeName))
	hdr.ReplyTo = PipeToEPR(reply.Advertisement(), "")
	if err := hdr.Apply(env); err != nil {
		return nil, err
	}
	out, err := b.openPipe(adv.DefinitionPipe)
	if err != nil {
		return nil, err
	}
	if err := out.Send(env.Marshal()); err != nil {
		return nil, err
	}
	select {
	case data := <-ch:
		return wsdl.Parse(data)
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-time.After(b.replyTimeout):
		return nil, fmt.Errorf("timed out retrieving WSDL from definition pipe")
	}
}

// ---------------------------------------------------------------------------
// Invoker

type invoker struct{ b *Binding }

// Invoker returns the pipe invoker.
func (b *Binding) Invoker() core.Invoker { return invoker{b} }

// Schemes implements core.Invoker.
func (i invoker) Schemes() []string { return []string{core.P2PSScheme} }

// advertFor resolves the P2PS advertisement backing a service. A service
// located through the p2ps locator carries its advert in Extra; a service
// located elsewhere — e.g. a UDDI record with a p2ps:// endpoint, the
// mixed UDDI-locator + P2PS-invoker composition — is resolved by
// discovering an advert matching the endpoint's peer and service name.
// The ServiceInfo is never mutated: it may be shared across goroutines.
func (b *Binding) advertFor(ctx context.Context, svc *core.ServiceInfo) (*p2ps.ServiceAdvertisement, error) {
	if adv, ok := svc.Extra.(*p2ps.ServiceAdvertisement); ok {
		return adv, nil
	}
	uri, err := core.ParseP2PSURI(svc.Endpoint)
	if err != nil {
		return nil, fmt.Errorf("p2psbind: service %q carries no P2PS advertisement and no p2ps:// endpoint: %w", svc.Name, err)
	}
	d := b.pp.Discover(p2ps.Query{Name: uri.Service}, b.discoveryTimeout)
	select {
	case <-d.Done():
	case <-ctx.Done():
		d.Cancel()
		return nil, ctx.Err()
	}
	for _, adv := range d.Matches() {
		if string(adv.Peer) == uri.Peer && adv.Pipe(RequestPipeName) != nil {
			return adv, nil
		}
	}
	return nil, fmt.Errorf("p2psbind: no advertisement found for %s", svc.Endpoint)
}

// Invoke implements core.Invoker: figures 5 and 6 in code. A request pipe
// is resolved from the service advert, a reply pipe is created and
// serialized into the ReplyTo header, and the SOAP request travels down
// the remote pipe; the response is correlated by RelatesTo.
func (i invoker) Invoke(ctx context.Context, svc *core.ServiceInfo, op string, params []engine.Param) (*engine.Result, error) {
	b := i.b
	adv, err := b.advertFor(ctx, svc)
	if err != nil {
		return nil, err
	}
	reqPipeAdv := adv.Pipe(RequestPipeName)
	if reqPipeAdv == nil {
		return nil, fmt.Errorf("p2psbind: advert %q has no %q pipe", adv.Name, RequestPipeName)
	}
	if svc.Definitions == nil {
		return nil, fmt.Errorf("p2psbind: service %q has no definitions", svc.Name)
	}
	stub := engine.NewStub(svc.Definitions, nil)
	env, det, err := stub.PrepareEnvelope(op, params...)
	if err != nil {
		return nil, err
	}

	// Fig. 5 step 1-2: request an input pipe to receive the response on.
	reply, err := b.pp.CreateInputPipe("reply")
	if err != nil {
		return nil, err
	}
	defer reply.Close()
	ch := make(chan []byte, 4)
	reply.AddListener(func(_ p2ps.PeerID, data []byte) {
		select {
		case ch <- data:
		default:
		}
	})

	// Fig. 5 step 3: serialize the pipe advert to WS-Addressing standards
	// and add it to the SOAP request.
	hdr := wsaddr.HeadersFor(PipeToEPR(reqPipeAdv, adv.Name), ActionFor(adv.Peer, adv.Name, RequestPipeName))
	hdr.ReplyTo = PipeToEPR(reply.Advertisement(), "")
	if err := hdr.Apply(env); err != nil {
		return nil, err
	}
	// Propagate the caller's deadline as a (non-mustUnderstand) SOAP
	// header, the pipe substrate's equivalent of X-Wspeer-Deadline.
	if dl, ok := ctx.Deadline(); ok {
		env.AddHeader(xmlutil.NewElement(xmlutil.N(transport.DeadlineNS, transport.DeadlineElement)).
			SetText(transport.FormatDeadline(dl)))
	}

	// Fig. 5 step 5: send the SOAP down the remote pipe.
	out, err := b.openPipe(reqPipeAdv)
	if err != nil {
		return nil, err
	}
	wire := env.Marshal()
	if err := out.Send(wire); err != nil {
		return nil, err
	}
	if det.Operation.OneWay() {
		return nil, nil
	}

	// Fig. 5 step 6-8: await the response on the reply pipe, correlating
	// by RelatesTo. Pipes are datagrams, so an unanswered request is
	// retransmitted within the reply window; the provider's duplicate
	// suppression makes that safe.
	attempts := b.retries + 1
	perAttempt := b.replyTimeout / time.Duration(attempts)
	deadline := time.After(b.replyTimeout)
	retry := time.NewTimer(perAttempt)
	defer retry.Stop()
	sent := 1
	for {
		select {
		case data := <-ch:
			respEnv, err := soap.Parse(data)
			if err != nil {
				continue // garbage on the reply pipe: keep waiting
			}
			respHdr, err := wsaddr.FromEnvelope(respEnv)
			if err == nil && respHdr.RelatesTo != "" && respHdr.RelatesTo != hdr.MessageID {
				continue // response to someone else's request
			}
			return engine.DecodeResponseEnvelope(respEnv, det)
		case <-retry.C:
			if sent < attempts {
				sent++
				_ = out.Send(wire) // identical MessageID: a retransmission
				retry.Reset(perAttempt)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-deadline:
			return nil, fmt.Errorf("p2psbind: no response from %s within %v (%d attempts)", svc.Endpoint, b.replyTimeout, sent)
		}
	}
}

// InvokeCall implements core.CallInvoker. Without exchange-layer headers
// on the carrier it is the synchronous invocation above; with them it
// sends per the requested exchange pattern. P2PS correlates replies by
// WS-Addressing natively, so a stamped request/response call is simply the
// normal invocation — only the one-way and callback patterns change the
// wire behaviour (no reply pipe is created and nothing is awaited).
func (i invoker) InvokeCall(c *pipeline.Call, svc *core.ServiceInfo, op string, params []engine.Param) (*engine.Result, error) {
	hdr := binding.ExchangeHeaders(c)
	if hdr == nil {
		return i.Invoke(c.Ctx, svc, op, params)
	}
	if p, _ := c.GetMeta(exchange.MetaPattern).(exchange.Pattern); p == exchange.RequestResponse {
		return i.Invoke(c.Ctx, svc, op, params)
	}
	return i.invokeExchange(c, svc, op, params, hdr)
}

// invokeExchange sends one one-way or callback message down the service's
// request pipe: the core-minted MessageID keys the correlation table, the
// ReplyTo (when present) names the consumer's hosted callback pipe, and a
// completed pipe write is the transport-level ack.
func (i invoker) invokeExchange(c *pipeline.Call, svc *core.ServiceInfo, op string, params []engine.Param, xh *wsaddr.MessageHeaders) (*engine.Result, error) {
	b := i.b
	ctx := c.Ctx
	adv, err := b.advertFor(ctx, svc)
	if err != nil {
		return nil, err
	}
	reqPipeAdv := adv.Pipe(RequestPipeName)
	if reqPipeAdv == nil {
		return nil, fmt.Errorf("p2psbind: advert %q has no %q pipe", adv.Name, RequestPipeName)
	}
	if svc.Definitions == nil {
		return nil, fmt.Errorf("p2psbind: service %q has no definitions", svc.Name)
	}
	stub := engine.NewStub(svc.Definitions, nil)
	env, _, err := stub.PrepareEnvelope(op, params...)
	if err != nil {
		return nil, err
	}
	hdr := wsaddr.HeadersFor(PipeToEPR(reqPipeAdv, adv.Name), ActionFor(adv.Peer, adv.Name, RequestPipeName))
	if xh.MessageID != "" {
		hdr.MessageID = xh.MessageID // the ID the correlation table is keyed by
	}
	hdr.ReplyTo = xh.ReplyTo // nil for one-way: no reply is expected
	hdr.FaultTo = xh.FaultTo
	if err := hdr.Apply(env); err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		env.AddHeader(xmlutil.NewElement(xmlutil.N(transport.DeadlineNS, transport.DeadlineElement)).
			SetText(transport.FormatDeadline(dl)))
	}
	out, err := b.openPipe(reqPipeAdv)
	if err != nil {
		return nil, err
	}
	wire := env.Marshal()
	c.Request = &transport.Request{
		Endpoint:    svc.Endpoint,
		Action:      hdr.Action,
		ContentType: soap.ContentType,
		Body:        wire,
	}
	if err := out.Send(wire); err != nil {
		return nil, err
	}
	c.Response = &transport.Response{}
	return nil, nil
}

// pipeReplyEndpoint is a consumer-hosted callback pipe.
type pipeReplyEndpoint struct {
	epr  *wsaddr.EndpointReference
	pipe *p2ps.InputPipe
}

// EPR implements core.ReplyEndpoint.
func (e *pipeReplyEndpoint) EPR() *wsaddr.EndpointReference { return e.epr }

// Close implements core.ReplyEndpoint.
func (e *pipeReplyEndpoint) Close() error {
	e.pipe.Close()
	return nil
}

// HostReplyEndpoint implements core.CallbackHoster: unlike the per-call
// reply pipes of the synchronous path, the callback pattern hosts one
// persistent input pipe whose advert EPR is stamped as the ReplyTo of
// every callback invocation; inbound replies are fed to deliver and
// correlated by the client's table.
func (i invoker) HostReplyEndpoint(deliver func(body []byte)) (core.ReplyEndpoint, error) {
	b := i.b
	pipe, err := b.pp.CreateInputPipe(CallbackPipeName)
	if err != nil {
		return nil, err
	}
	pipe.AddListener(func(_ p2ps.PeerID, data []byte) {
		if !b.enter() {
			return
		}
		defer b.inflight.Done()
		deliver(data)
	})
	return &pipeReplyEndpoint{epr: PipeToEPR(pipe.Advertisement(), ""), pipe: pipe}, nil
}
