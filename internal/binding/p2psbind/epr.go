// Package p2psbind is WSPeer's P2PS implementation (paper §IV-B, figures
// 4-6): services are exposed as input pipes advertised in extended
// ServiceAdvertisements (with a definition pipe serving the WSDL),
// discovered by in-network queries, and invoked by sending SOAP down
// unidirectional pipes, with WS-Addressing ReplyTo headers carrying the
// consumer's reply-pipe advertisement to make the exchange bidirectional.
package p2psbind

import (
	"fmt"

	"wspeer/internal/core"
	"wspeer/internal/p2ps"
	"wspeer/internal/wsaddr"
	"wspeer/internal/xmlutil"
)

var pipeAdvElementName = xmlutil.N(p2ps.Namespace, "PipeAdvertisement")

// PipeToEPR serializes a pipe advertisement to a WS-Addressing
// EndpointReference per the paper's mapping: the Address is the p2ps URI
// built from the peer ID and the service name (empty service for bare
// reply pipes), and the advertisement's fields travel as reference
// properties.
func PipeToEPR(pipe *p2ps.PipeAdvertisement, serviceName string) *wsaddr.EndpointReference {
	u := core.P2PSURI{Peer: string(pipe.Peer), Service: serviceName}
	epr := wsaddr.NewEndpointReference(u.String())
	epr.AddReferenceProperty(pipe.Element())
	return epr
}

// EPRToPipe recovers the pipe advertisement from an EndpointReference:
// "At the service provider end, the peer converts this reference to a
// PipeAdvertisement" (paper Fig. 6, step 2).
func EPRToPipe(epr *wsaddr.EndpointReference) (*p2ps.PipeAdvertisement, error) {
	el := epr.ReferenceProperty(pipeAdvElementName)
	if el == nil {
		return nil, fmt.Errorf("p2psbind: EndpointReference %q carries no PipeAdvertisement reference property", epr.Address)
	}
	pipe, err := p2ps.PipeAdvertisementFromElement(el)
	if err != nil {
		return nil, fmt.Errorf("p2psbind: %w", err)
	}
	if pipe.Peer == "" {
		// Fall back to the address URI's peer component.
		if u, uerr := core.ParseP2PSURI(epr.Address); uerr == nil {
			pipe.Peer = p2ps.PeerID(u.Peer)
		}
	}
	return pipe, nil
}

// ActionFor builds the Action URI addressing a pipe: "the Action field
// becomes the Address URI appended by a fragment component that represents
// the pipe name" (paper §IV-B).
func ActionFor(peer p2ps.PeerID, serviceName, pipeName string) string {
	return core.P2PSURI{Peer: string(peer), Service: serviceName, Pipe: pipeName}.String()
}
