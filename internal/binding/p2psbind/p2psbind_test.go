package p2psbind

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"wspeer/internal/core"
	"wspeer/internal/engine"
	"wspeer/internal/p2ps"
	"wspeer/internal/soap"
	"wspeer/internal/wsaddr"
)

// overlay is a real-time in-process P2PS network for binding tests.
type overlay struct {
	t   *testing.T
	net *p2ps.LocalNetwork
	rdv *p2ps.Peer
}

func newOverlay(t *testing.T) *overlay {
	t.Helper()
	net := p2ps.NewLocalNetwork()
	rdv, err := p2ps.NewPeer(p2ps.Config{Transport: net.NewEndpoint(), Rendezvous: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rdv.Close() })
	return &overlay{t: t, net: net, rdv: rdv}
}

// boundPeer returns a WSPeer peer wired to a fresh P2PS peer on the
// overlay.
func (o *overlay) boundPeer() (*core.Peer, *Binding) {
	o.t.Helper()
	pp, err := p2ps.NewPeer(p2ps.Config{Transport: o.net.NewEndpoint(), Seeds: []string{o.rdv.Addr()}})
	if err != nil {
		o.t.Fatal(err)
	}
	o.t.Cleanup(func() { pp.Close() })
	b, err := New(Options{Peer: pp, DiscoveryTimeout: 300 * time.Millisecond, ReplyTimeout: 5 * time.Second})
	if err != nil {
		o.t.Fatal(err)
	}
	p := core.NewPeer()
	b.Attach(p)
	return p, b
}

func echoDef() engine.ServiceDef {
	return engine.ServiceDef{
		Name: "Echo",
		Operations: []engine.OperationDef{
			{Name: "echoString", Func: func(s string) string { return "p2ps:" + s }, ParamNames: []string{"msg"}},
			{Name: "fail", Func: func() (string, error) { return "", errors.New("intentional") }},
			{Name: "notify", Func: func(s string) error { return nil }, OneWay: true},
		},
	}
}

// locateWithRetry tolerates advert propagation latency on the real-time
// overlay.
func locateWithRetry(t *testing.T, p *core.Peer, name string) *core.ServiceInfo {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		info, err := p.Client().LocateOne(context.Background(), core.NameQuery{Name: name})
		if err == nil {
			return info
		}
	}
	t.Fatalf("service %q never became locatable", name)
	return nil
}

// TestFigure4Lifecycle runs the paper's Fig. 4 end to end: deploy →
// publish (advert) → locate (in-network query + definition pipe) → invoke
// (pipes + WS-Addressing ReplyTo).
func TestFigure4Lifecycle(t *testing.T) {
	o := newOverlay(t)
	providerPeer, _ := o.boundPeer()
	consumerPeer, _ := o.boundPeer()
	ctx := context.Background()

	dep, err := providerPeer.Server().DeployAndPublish(ctx, echoDef())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(dep.Endpoint, "p2ps://") {
		t.Fatalf("endpoint = %q", dep.Endpoint)
	}
	if !core.IsP2PSURI(dep.Endpoint) {
		t.Fatalf("endpoint scheme: %q", dep.Endpoint)
	}

	info := locateWithRetry(t, consumerPeer, "Echo")
	if info.Definitions == nil || info.Definitions.Operation("echoString") == nil {
		t.Fatal("WSDL not retrieved through definition pipe")
	}
	if info.Extra == nil {
		t.Fatal("advert not attached to service info")
	}

	inv, err := consumerPeer.Client().NewInvocation(info)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inv.Invoke(ctx, "echoString", engine.P("msg", "fig4"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.String("return")
	if err != nil || got != "p2ps:fig4" {
		t.Fatalf("invoke = %q, %v", got, err)
	}
}

func TestFaultsTravelOverPipes(t *testing.T) {
	o := newOverlay(t)
	providerPeer, _ := o.boundPeer()
	consumerPeer, _ := o.boundPeer()
	ctx := context.Background()
	if _, err := providerPeer.Server().DeployAndPublish(ctx, echoDef()); err != nil {
		t.Fatal(err)
	}
	info := locateWithRetry(t, consumerPeer, "Echo")
	inv, err := consumerPeer.Client().NewInvocation(info)
	if err != nil {
		t.Fatal(err)
	}
	_, err = inv.Invoke(ctx, "fail")
	var f *soap.Fault
	if !errors.As(err, &f) || !strings.Contains(f.String, "intentional") {
		t.Fatalf("fault over pipes: %v", err)
	}
}

func TestOneWayOverPipes(t *testing.T) {
	o := newOverlay(t)
	providerPeer, providerBinding := o.boundPeer()
	consumerPeer, _ := o.boundPeer()
	ctx := context.Background()
	if _, err := providerPeer.Server().DeployAndPublish(ctx, echoDef()); err != nil {
		t.Fatal(err)
	}
	info := locateWithRetry(t, consumerPeer, "Echo")
	inv, err := consumerPeer.Client().NewInvocation(info)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inv.Invoke(ctx, "notify", engine.P("in0", "evt"))
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatal("one-way returned a result")
	}
	// The provider must eventually register the delivery.
	deadline := time.Now().Add(5 * time.Second)
	for providerBinding.Peer().Stats().DataDelivered == 0 {
		if time.Now().After(deadline) {
			t.Fatal("one-way request never delivered")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServerEventsFire(t *testing.T) {
	o := newOverlay(t)
	providerPeer, _ := o.boundPeer()
	consumerPeer, _ := o.boundPeer()
	ctx := context.Background()
	var mu sync.Mutex
	served := 0
	providerPeer.AddListener(core.ListenerFuncs{Server: func(e core.ServerMessageEvent) {
		mu.Lock()
		served++
		mu.Unlock()
	}})
	if _, err := providerPeer.Server().DeployAndPublish(ctx, echoDef()); err != nil {
		t.Fatal(err)
	}
	info := locateWithRetry(t, consumerPeer, "Echo")
	inv, _ := consumerPeer.Client().NewInvocation(info)
	if _, err := inv.Invoke(ctx, "echoString", engine.P("msg", "x")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if served != 1 {
		t.Fatalf("server events = %d", served)
	}
}

func TestUndeployClosesPipes(t *testing.T) {
	o := newOverlay(t)
	providerPeer, _ := o.boundPeer()
	consumerPeer, _ := o.boundPeer()
	ctx := context.Background()
	if _, err := providerPeer.Server().DeployAndPublish(ctx, echoDef()); err != nil {
		t.Fatal(err)
	}
	info := locateWithRetry(t, consumerPeer, "Echo")
	if err := providerPeer.Server().Undeploy(ctx, "Echo"); err != nil {
		t.Fatal(err)
	}
	// Invocation now times out (pipes closed, engine emptied).
	b, err := New(Options{Peer: o.rdv, ReplyTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_ = b
	inv, err := consumerPeer.Client().NewInvocation(info)
	if err != nil {
		t.Fatal(err)
	}
	shortCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if _, err := inv.Invoke(shortCtx, "echoString", engine.P("msg", "x")); err == nil {
		t.Fatal("undeployed service still answered")
	}
	// And discovery no longer finds it.
	if _, err := consumerPeer.Client().LocateOne(ctx, core.NameQuery{Name: "Echo"}); err == nil {
		t.Fatal("unpublished advert still found")
	}
}

func TestEPRMapping(t *testing.T) {
	pipe := &p2ps.PipeAdvertisement{ID: "pipe-1", Name: "requests", Peer: "peer-9"}
	epr := PipeToEPR(pipe, "Echo")
	if epr.Address != "p2ps://peer-9/Echo" {
		t.Fatalf("address = %q", epr.Address)
	}
	back, err := EPRToPipe(epr)
	if err != nil || *back != *pipe {
		t.Fatalf("round trip: %+v, %v", back, err)
	}
	// Bare reply pipe: no service component.
	epr = PipeToEPR(pipe, "")
	if epr.Address != "p2ps://peer-9" {
		t.Fatalf("bare address = %q", epr.Address)
	}
	// EPR without the reference property is rejected.
	bad := PipeToEPR(pipe, "Echo")
	bad.ReferenceProperties = nil
	if _, err := EPRToPipe(bad); err == nil {
		t.Fatal("EPR without pipe advert accepted")
	}
}

func TestActionFor(t *testing.T) {
	got := ActionFor("peer-1", "Echo", "requests")
	if got != "p2ps://peer-1/Echo#requests" {
		t.Fatalf("action = %q", got)
	}
	u, err := core.ParseP2PSURI(got)
	if err != nil || u.Pipe != "requests" {
		t.Fatalf("action unparseable: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("missing peer accepted")
	}
}

func TestInvokerRequiresAdvert(t *testing.T) {
	o := newOverlay(t)
	_, b := o.boundPeer()
	inv := b.Invoker()
	_, err := inv.Invoke(context.Background(), &core.ServiceInfo{Name: "X", Endpoint: "p2ps://p/X"}, "op", nil)
	if err == nil || !strings.Contains(err.Error(), "advertisement") {
		t.Fatalf("err = %v", err)
	}
}

func TestPublisherRequiresP2PSDeployment(t *testing.T) {
	o := newOverlay(t)
	_, b := o.boundPeer()
	eng := engine.New()
	svc, err := eng.Deploy(echoDef())
	if err != nil {
		t.Fatal(err)
	}
	_, err = b.Publisher().Publish(context.Background(), &core.Deployment{Service: svc})
	if err == nil {
		t.Fatal("foreign deployment accepted")
	}
}

func TestMixedBindingLocateUDDIInvokeP2PS(t *testing.T) {
	// Paper §IV: "A P2PS Client could use the UDDI enabled ServiceLocator
	// defined in the standard implementation to search for services."
	// Here the reverse composition is exercised at the ServiceInfo level:
	// a P2PS-located service invoked after its info was relayed through a
	// second consumer that never ran discovery itself.
	o := newOverlay(t)
	providerPeer, _ := o.boundPeer()
	consumerPeer, consumerBinding := o.boundPeer()
	relayPeer, _ := o.boundPeer()
	ctx := context.Background()
	if _, err := providerPeer.Server().DeployAndPublish(ctx, echoDef()); err != nil {
		t.Fatal(err)
	}
	info := locateWithRetry(t, consumerPeer, "Echo")
	_ = consumerBinding

	// Hand the located info to the relay peer's client.
	inv, err := relayPeer.Client().NewInvocation(info)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inv.Invoke(ctx, "echoString", engine.P("msg", "relay"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.String("return"); got != "p2ps:relay" {
		t.Fatalf("relay invoke = %q", got)
	}
}

// TestFaultToRouting crafts a raw request whose FaultTo differs from its
// ReplyTo and verifies the fault is routed to the FaultTo pipe while the
// reply pipe stays quiet.
func TestFaultToRouting(t *testing.T) {
	o := newOverlay(t)
	providerPeer, providerBinding := o.boundPeer()
	_, consumerBinding := o.boundPeer()
	ctx := context.Background()
	if _, err := providerPeer.Server().DeployAndPublish(ctx, echoDef()); err != nil {
		t.Fatal(err)
	}
	consNode := consumerBinding.Peer()

	// Discover the advert at the p2ps level.
	var adv *p2ps.ServiceAdvertisement
	deadline := time.Now().Add(10 * time.Second)
	for adv == nil && time.Now().Before(deadline) {
		adv = consNode.DiscoverOne(p2ps.Query{Name: "Echo"}, 200*time.Millisecond)
	}
	if adv == nil {
		t.Fatal("discovery failed")
	}

	replyPipe, err := consNode.CreateInputPipe("reply")
	if err != nil {
		t.Fatal(err)
	}
	faultPipe, err := consNode.CreateInputPipe("faults")
	if err != nil {
		t.Fatal(err)
	}
	replies := make(chan []byte, 1)
	faults := make(chan []byte, 1)
	replyPipe.AddListener(func(_ p2ps.PeerID, data []byte) { replies <- data })
	faultPipe.AddListener(func(_ p2ps.PeerID, data []byte) { faults <- data })

	// Build a request for the failing operation by hand.
	defs, err := providerBinding.FetchDefinitions(ctx, adv)
	if err != nil {
		t.Fatal(err)
	}
	stub := engine.NewStub(defs, nil)
	env, _, err := stub.PrepareEnvelope("fail")
	if err != nil {
		t.Fatal(err)
	}
	reqPipe := adv.Pipe(RequestPipeName)
	hdr := wsaddr.HeadersFor(PipeToEPR(reqPipe, adv.Name), ActionFor(adv.Peer, adv.Name, RequestPipeName))
	hdr.ReplyTo = PipeToEPR(replyPipe.Advertisement(), "")
	hdr.FaultTo = PipeToEPR(faultPipe.Advertisement(), "")
	if err := hdr.Apply(env); err != nil {
		t.Fatal(err)
	}
	out, err := consNode.OpenOutputPipe(reqPipe)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Send(env.Marshal()); err != nil {
		t.Fatal(err)
	}

	select {
	case data := <-faults:
		fenv, err := soap.Parse(data)
		if err != nil || !fenv.IsFault() {
			t.Fatalf("FaultTo pipe got a non-fault: %v", err)
		}
		fhdr, err := wsaddr.FromEnvelope(fenv)
		if err != nil || fhdr.RelatesTo != hdr.MessageID {
			t.Fatalf("fault not correlated: %+v, %v", fhdr, err)
		}
	case data := <-replies:
		t.Fatalf("fault delivered to ReplyTo pipe: %s", data)
	case <-time.After(5 * time.Second):
		t.Fatal("fault never arrived")
	}
	select {
	case <-replies:
		t.Fatal("reply pipe also received data")
	default:
	}
}

func TestExprQueryOverP2PS(t *testing.T) {
	o := newOverlay(t)
	providerPeer, providerBinding := o.boundPeer()
	consumerPeer, _ := o.boundPeer()
	ctx := context.Background()

	providerBinding.SetAdvertAttrs("Echo", map[string]string{"kind": "echo", "price": "0.25"})
	if _, err := providerPeer.Server().DeployAndPublish(ctx, echoDef()); err != nil {
		t.Fatal(err)
	}
	def2 := echoDef()
	def2.Name = "Expensive"
	providerBinding.SetAdvertAttrs("Expensive", map[string]string{"kind": "echo", "price": "9.99"})
	if _, err := providerPeer.Server().DeployAndPublish(ctx, def2); err != nil {
		t.Fatal(err)
	}

	// The predicate travels inside the query and is evaluated in-network.
	var infos []*core.ServiceInfo
	var err error
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		infos, err = consumerPeer.Client().Locate(ctx, core.ExprQuery{
			Expr: `attr(kind) = 'echo' and attr(price) < 1`,
		})
		if err == nil && len(infos) > 0 {
			break
		}
	}
	if len(infos) != 1 || infos[0].Name != "Echo" {
		t.Fatalf("expr query: %+v (%v)", infos, err)
	}
}

// lossyTransport drops the first N sends whose payload mentions a marker,
// simulating request loss on the overlay.
type lossyTransport struct {
	p2ps.Transport
	mu    sync.Mutex
	drops int
}

func (l *lossyTransport) Send(to string, data []byte) error {
	l.mu.Lock()
	if l.drops > 0 && strings.Contains(string(data), "lossy-payload") {
		l.drops--
		l.mu.Unlock()
		return nil // silently lost
	}
	l.mu.Unlock()
	return l.Transport.Send(to, data)
}

// TestRetransmissionSurvivesRequestLoss drops the first two copies of the
// request; the invoker's retransmission plus the provider's duplicate
// suppression must still produce exactly one invocation and one response.
func TestRetransmissionSurvivesRequestLoss(t *testing.T) {
	o := newOverlay(t)
	providerPeer, _ := o.boundPeer()
	ctx := context.Background()

	var mu sync.Mutex
	invocations := 0
	def := engine.ServiceDef{
		Name: "Echo",
		Operations: []engine.OperationDef{{
			Name: "echoString",
			Func: func(s string) string {
				mu.Lock()
				invocations++
				mu.Unlock()
				return "p2ps:" + s
			},
			ParamNames: []string{"msg"},
		}},
	}
	if _, err := providerPeer.Server().DeployAndPublish(ctx, def); err != nil {
		t.Fatal(err)
	}

	// Consumer with a lossy transport and fast retries.
	lossy := &lossyTransport{Transport: o.net.NewEndpoint(), drops: 2}
	node, err := p2ps.NewPeer(p2ps.Config{Transport: lossy, Seeds: []string{o.rdv.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	b, err := New(Options{
		Peer: node, DiscoveryTimeout: 300 * time.Millisecond,
		ReplyTimeout: 3 * time.Second, Retries: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	consumer := core.NewPeer()
	b.Attach(consumer)

	info := locateWithRetry(t, consumer, "Echo")
	inv, err := consumer.Client().NewInvocation(info)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inv.Invoke(ctx, "echoString", engine.P("msg", "lossy-payload"))
	if err != nil {
		t.Fatalf("invocation did not survive request loss: %v", err)
	}
	if got, _ := res.String("return"); got != "p2ps:lossy-payload" {
		t.Fatalf("result = %q", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if invocations != 1 {
		t.Fatalf("operation ran %d times (dedup failed)", invocations)
	}
}

// TestDuplicateRequestReplaysResponse delivers the same request twice at
// the p2ps level and checks the operation runs once while two responses
// are sent.
func TestDuplicateRequestReplaysResponse(t *testing.T) {
	o := newOverlay(t)
	providerPeer, providerBinding := o.boundPeer()
	_, consumerBinding := o.boundPeer()
	ctx := context.Background()

	var mu sync.Mutex
	invocations := 0
	def := engine.ServiceDef{
		Name: "Once",
		Operations: []engine.OperationDef{{
			Name: "op",
			Func: func() string {
				mu.Lock()
				invocations++
				mu.Unlock()
				return "done"
			},
		}},
	}
	if _, err := providerPeer.Server().DeployAndPublish(ctx, def); err != nil {
		t.Fatal(err)
	}
	consNode := consumerBinding.Peer()
	var adv *p2ps.ServiceAdvertisement
	deadline := time.Now().Add(10 * time.Second)
	for adv == nil && time.Now().Before(deadline) {
		adv = consNode.DiscoverOne(p2ps.Query{Name: "Once"}, 200*time.Millisecond)
	}
	if adv == nil {
		t.Fatal("discovery failed")
	}

	defs, err := providerBinding.FetchDefinitions(ctx, adv)
	if err != nil {
		t.Fatal(err)
	}
	stub := engine.NewStub(defs, nil)
	env, _, err := stub.PrepareEnvelope("op")
	if err != nil {
		t.Fatal(err)
	}
	reply, err := consNode.CreateInputPipe("reply")
	if err != nil {
		t.Fatal(err)
	}
	replies := make(chan []byte, 4)
	reply.AddListener(func(_ p2ps.PeerID, data []byte) { replies <- data })
	reqPipe := adv.Pipe(RequestPipeName)
	hdr := wsaddr.HeadersFor(PipeToEPR(reqPipe, adv.Name), ActionFor(adv.Peer, adv.Name, RequestPipeName))
	hdr.ReplyTo = PipeToEPR(reply.Advertisement(), "")
	if err := hdr.Apply(env); err != nil {
		t.Fatal(err)
	}
	out, err := consNode.OpenOutputPipe(reqPipe)
	if err != nil {
		t.Fatal(err)
	}
	wire := env.Marshal()
	if err := out.Send(wire); err != nil {
		t.Fatal(err)
	}
	// First response.
	select {
	case <-replies:
	case <-time.After(5 * time.Second):
		t.Fatal("no first response")
	}
	// Exact duplicate: must be answered from the replay cache.
	if err := out.Send(wire); err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-replies:
		renv, err := soap.Parse(data)
		if err != nil || renv.IsFault() {
			t.Fatalf("replayed response bad: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("duplicate not answered")
	}
	mu.Lock()
	defer mu.Unlock()
	if invocations != 1 {
		t.Fatalf("operation ran %d times", invocations)
	}
}
