package p2psbind

import (
	"testing"
	"time"

	"wspeer/internal/binding/bindtest"
	"wspeer/internal/core"
	"wspeer/internal/p2ps"
)

// TestConformance runs the shared binding conformance suite against the
// P2PS binding: each fabric is one fresh real-time overlay with its own
// rendezvous peer, and every peer joins it through a fresh endpoint.
func TestConformance(t *testing.T) {
	bindtest.Run(t, bindtest.World{
		NewFabric: func(t *testing.T) *bindtest.Fabric {
			o := newOverlay(t)
			return &bindtest.Fabric{
				NewPeer: func(t *testing.T) (*core.Peer, core.Binding) {
					t.Helper()
					pp, err := p2ps.NewPeer(p2ps.Config{Transport: o.net.NewEndpoint(), Seeds: []string{o.rdv.Addr()}})
					if err != nil {
						t.Fatal(err)
					}
					t.Cleanup(func() { pp.Close() })
					b, err := New(Options{Peer: pp, DiscoveryTimeout: 300 * time.Millisecond, ReplyTimeout: 5 * time.Second})
					if err != nil {
						t.Fatal(err)
					}
					t.Cleanup(func() { b.Close() })
					p := core.NewPeer()
					if err := p.AttachBinding(b); err != nil {
						t.Fatal(err)
					}
					return p, b
				},
			}
		},
	})
}
