package wsdl

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"wspeer/internal/xmlutil"
	"wspeer/internal/xsd"
)

const tns = "http://example.org/echo"

// echoDefs builds a complete Echo service description the way the engine
// does: schema wrappers, messages, portType, binding, service.
func echoDefs(t *testing.T) *Definitions {
	t.Helper()
	schema := xsd.NewSchema(tns)
	if err := schema.AddElement("Echo", []xsd.Field{{Name: "msg", Type: reflect.TypeOf("")}}); err != nil {
		t.Fatal(err)
	}
	if err := schema.AddElement("EchoResponse", []xsd.Field{{Name: "return", Type: reflect.TypeOf("")}}); err != nil {
		t.Fatal(err)
	}
	if err := schema.AddElement("Notify", []xsd.Field{{Name: "event", Type: reflect.TypeOf("")}}); err != nil {
		t.Fatal(err)
	}
	return &Definitions{
		Name:            "EchoService",
		TargetNamespace: tns,
		Schema:          schema,
		Messages: []*Message{
			{Name: "EchoRequestMsg", Parts: []Part{{Name: "parameters", Element: xmlutil.N(tns, "Echo")}}},
			{Name: "EchoResponseMsg", Parts: []Part{{Name: "parameters", Element: xmlutil.N(tns, "EchoResponse")}}},
			{Name: "NotifyMsg", Parts: []Part{{Name: "parameters", Element: xmlutil.N(tns, "Notify")}}},
		},
		PortTypes: []*PortType{{
			Name: "EchoPortType",
			Operations: []*Operation{
				{Name: "Echo", Input: "EchoRequestMsg", Output: "EchoResponseMsg", Doc: "echoes its input"},
				{Name: "Notify", Input: "NotifyMsg"}, // one-way
			},
		}},
		Bindings: []*Binding{{
			Name:      "EchoBinding",
			PortType:  "EchoPortType",
			Transport: TransportHTTP,
			Operations: []BindingOperation{
				{Name: "Echo", SOAPAction: tns + "#Echo"},
				{Name: "Notify", SOAPAction: tns + "#Notify"},
			},
		}},
		Services: []*Service{{
			Name: "EchoService",
			Ports: []Port{
				{Name: "EchoPort", Binding: "EchoBinding", Address: "http://127.0.0.1:8081/services/Echo"},
			},
		}},
	}
}

func TestValidateOK(t *testing.T) {
	if err := echoDefs(t).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateFailures(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Definitions)
	}{
		{"empty tns", func(d *Definitions) { d.TargetNamespace = "" }},
		{"dup message", func(d *Definitions) { d.Messages = append(d.Messages, d.Messages[0]) }},
		{"missing part element", func(d *Definitions) { d.Messages[0].Parts[0].Element = xmlutil.Name{} }},
		{"part references unknown schema element", func(d *Definitions) {
			d.Messages[0].Parts[0].Element = xmlutil.N(tns, "NoSuchElement")
		}},
		{"op unknown input", func(d *Definitions) { d.PortTypes[0].Operations[0].Input = "Nope" }},
		{"op unknown output", func(d *Definitions) { d.PortTypes[0].Operations[0].Output = "Nope" }},
		{"dup portType", func(d *Definitions) { d.PortTypes = append(d.PortTypes, d.PortTypes[0]) }},
		{"binding unknown portType", func(d *Definitions) { d.Bindings[0].PortType = "Nope" }},
		{"binding unknown op", func(d *Definitions) {
			d.Bindings[0].Operations = append(d.Bindings[0].Operations, BindingOperation{Name: "Nope"})
		}},
		{"port unknown binding", func(d *Definitions) { d.Services[0].Ports[0].Binding = "Nope" }},
		{"port empty address", func(d *Definitions) { d.Services[0].Ports[0].Address = "" }},
	}
	for _, m := range mutations {
		d := echoDefs(t)
		m.mut(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid definitions", m.name)
		}
	}
}

func TestGenerateParseRoundTrip(t *testing.T) {
	d := echoDefs(t)
	data, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, data)
	}
	if back.Name != "EchoService" || back.TargetNamespace != tns {
		t.Fatalf("header: %+v", back)
	}
	if len(back.RawSchemas) != 1 {
		t.Fatalf("schemas = %d", len(back.RawSchemas))
	}
	if len(back.Messages) != 3 || back.Message("EchoRequestMsg") == nil {
		t.Fatalf("messages: %+v", back.Messages)
	}
	if back.Message("EchoRequestMsg").Parts[0].Element != xmlutil.N(tns, "Echo") {
		t.Fatalf("part element: %v", back.Message("EchoRequestMsg").Parts[0].Element)
	}
	pt := back.PortType("EchoPortType")
	if pt == nil || len(pt.Operations) != 2 {
		t.Fatalf("portType: %+v", pt)
	}
	echo := back.Operation("Echo")
	if echo == nil || echo.Input != "EchoRequestMsg" || echo.Output != "EchoResponseMsg" {
		t.Fatalf("op: %+v", echo)
	}
	if echo.Doc != "echoes its input" {
		t.Fatalf("doc lost: %q", echo.Doc)
	}
	notify := back.Operation("Notify")
	if notify == nil || !notify.OneWay() {
		t.Fatalf("one-way lost: %+v", notify)
	}
	b := back.Binding("EchoBinding")
	if b == nil || b.Transport != TransportHTTP || len(b.Operations) != 2 {
		t.Fatalf("binding: %+v", b)
	}
	svc := back.Service("EchoService")
	if svc == nil || svc.Ports[0].Address != "http://127.0.0.1:8081/services/Echo" {
		t.Fatalf("service: %+v", svc)
	}
	// The reparsed document must validate too (schema check goes through
	// the raw schema path).
	if !back.SchemaElementDeclared(xmlutil.N(tns, "Echo")) {
		t.Fatal("schema element lookup on parsed document")
	}
	if back.SchemaElementDeclared(xmlutil.N(tns, "Zzz")) {
		t.Fatal("schema element false positive")
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("reparsed validate: %v", err)
	}
}

func TestDetail(t *testing.T) {
	d := echoDefs(t)
	det, err := d.Detail("Echo")
	if err != nil {
		t.Fatal(err)
	}
	if det.Input != xmlutil.N(tns, "Echo") || det.Output != xmlutil.N(tns, "EchoResponse") {
		t.Fatalf("wrappers: %+v", det)
	}
	if det.SOAPAction != tns+"#Echo" {
		t.Fatalf("action: %q", det.SOAPAction)
	}
	if det.Address == "" || det.Transport != TransportHTTP {
		t.Fatalf("endpoint: %+v", det)
	}

	det, err = d.Detail("Notify")
	if err != nil {
		t.Fatal(err)
	}
	if !det.Output.IsZero() {
		t.Fatalf("one-way output should be zero: %+v", det)
	}

	if _, err := d.Detail("Missing"); err == nil {
		t.Fatal("missing op accepted")
	}
	// Operation defined but not bound by any port. Detail results are
	// memoized, so structural mutation requires explicit invalidation.
	d.Services = nil
	d.InvalidateDetails()
	if _, err := d.Detail("Echo"); err == nil {
		t.Fatal("unbound op accepted")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte("<x/>")); err == nil {
		t.Fatal("non-wsdl accepted")
	}
	if _, err := Parse([]byte("not xml")); err == nil {
		t.Fatal("garbage accepted")
	}
	noTNS := `<wsdl:definitions xmlns:wsdl="` + Namespace + `"/>`
	if _, err := Parse([]byte(noTNS)); err == nil {
		t.Fatal("missing targetNamespace accepted")
	}
}

func TestGeneratedDocumentShape(t *testing.T) {
	data, err := echoDefs(t).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{"definitions", "portType", `style="document"`, `use="literal"`, "soapAction"} {
		if !strings.Contains(s, want) {
			t.Errorf("generated WSDL missing %q:\n%s", want, s)
		}
	}
}

func TestLocalOfFallback(t *testing.T) {
	scope := xmlutil.NewElement(xmlutil.N("", "x"))
	if got := localOf(scope, "undeclared:Thing"); got != "Thing" {
		t.Fatalf("fallback = %q", got)
	}
	if got := localOf(scope, "Plain"); got != "Plain" {
		t.Fatalf("plain = %q", got)
	}
}

// Property: definitions built from arbitrary valid NCNames survive a
// marshal/parse round trip with detail resolution intact.
func TestQuickGenerateParseRoundTrip(t *testing.T) {
	ident := func(s string, fallback string) string {
		var b strings.Builder
		for _, r := range s {
			if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
				(b.Len() > 0 && r >= '0' && r <= '9') {
				b.WriteRune(r)
			}
			if b.Len() >= 24 {
				break
			}
		}
		if b.Len() == 0 {
			return fallback
		}
		return b.String()
	}
	f := func(svcRaw, opRaw string) bool {
		svcName := ident(svcRaw, "Svc")
		opName := ident(opRaw, "op")
		if svcName == opName {
			opName += "Op"
		}
		schema := xsd.NewSchema(tns)
		if err := schema.AddElement(opName, []xsd.Field{{Name: "in0", Type: reflect.TypeOf("")}}); err != nil {
			return false
		}
		if err := schema.AddElement(opName+"Response", []xsd.Field{{Name: "return", Type: reflect.TypeOf("")}}); err != nil {
			return false
		}
		d := &Definitions{
			Name:            svcName,
			TargetNamespace: tns,
			Schema:          schema,
			Messages: []*Message{
				{Name: opName + "In", Parts: []Part{{Name: "p", Element: xmlutil.N(tns, opName)}}},
				{Name: opName + "Out", Parts: []Part{{Name: "p", Element: xmlutil.N(tns, opName+"Response")}}},
			},
			PortTypes: []*PortType{{Name: svcName + "PT", Operations: []*Operation{
				{Name: opName, Input: opName + "In", Output: opName + "Out"},
			}}},
			Bindings: []*Binding{{Name: svcName + "B", PortType: svcName + "PT",
				Transport:  TransportHTTP,
				Operations: []BindingOperation{{Name: opName, SOAPAction: tns + "#" + opName}}}},
			Services: []*Service{{Name: svcName, Ports: []Port{
				{Name: "P", Binding: svcName + "B", Address: "http://h/" + svcName},
			}}},
		}
		raw, err := d.Marshal()
		if err != nil {
			return false
		}
		back, err := Parse(raw)
		if err != nil {
			return false
		}
		det, err := back.Detail(opName)
		if err != nil {
			return false
		}
		return det.Input == xmlutil.N(tns, opName) && det.Address == "http://h/"+svcName
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
