// Package wsdl implements the WSDL 1.1 subset WSPeer uses for service
// description: document/literal messages, portTypes with request/response
// and one-way operations, SOAP bindings and service/port endpoints. It can
// generate definitions from registered Go services (via the engine) and
// parse definitions published by remote peers.
package wsdl

import (
	"fmt"
	"sync"

	"wspeer/internal/xmlutil"
	"wspeer/internal/xsd"
)

// Namespaces used by WSDL 1.1 documents.
const (
	Namespace     = "http://schemas.xmlsoap.org/wsdl/"
	SOAPNamespace = "http://schemas.xmlsoap.org/wsdl/soap/"

	// TransportHTTP is the standard SOAP-over-HTTP transport URI.
	TransportHTTP = "http://schemas.xmlsoap.org/soap/http"
	// TransportHTTPG marks the authenticated HTTP profile (Globus HTTPG
	// substitute).
	TransportHTTPG = "http://wspeer.dev/transport/httpg"
	// TransportP2PS marks SOAP carried over P2PS pipes.
	TransportP2PS = "http://wspeer.dev/transport/p2ps"
	// TransportInMem marks SOAP carried over the process-local in-memory
	// network (the inmem binding).
	TransportInMem = "http://wspeer.dev/transport/inmem"
)

// Definitions is the root of a WSDL document.
type Definitions struct {
	Name            string
	TargetNamespace string

	// Schema holds generated type definitions; RawSchemas holds schemas of
	// parsed documents (kept as element trees). Exactly one side is
	// typically populated.
	Schema     *xsd.Schema
	RawSchemas []*xmlutil.Element

	Messages  []*Message
	PortTypes []*PortType
	Bindings  []*Binding
	Services  []*Service

	// Imports lists wsdl:import references found while parsing; resolve
	// them with ResolveImports.
	Imports []Import

	// detailCache memoizes Detail lookups (operation name → immutable
	// *OperationDetail) so the per-invocation WSDL walk happens once per
	// operation per Definitions. Concurrency-safe; see Detail. Definitions
	// must not be copied by value once Detail has been called.
	detailCache sync.Map
}

// Import is a wsdl:import reference to another definitions document.
type Import struct {
	Namespace string
	Location  string
}

// Message names a set of parts.
type Message struct {
	Name  string
	Parts []Part
}

// Part references a schema element (document/literal style).
type Part struct {
	Name    string
	Element xmlutil.Name
}

// PortType groups abstract operations.
type PortType struct {
	Name       string
	Operations []*Operation
}

// Operation is an abstract operation. Output is empty for one-way
// operations.
type Operation struct {
	Name   string
	Input  string // message name
	Output string // message name, "" for one-way
	Doc    string // optional documentation
}

// OneWay reports whether the operation has no output message.
func (o *Operation) OneWay() bool { return o.Output == "" }

// Binding binds a portType to a concrete protocol.
type Binding struct {
	Name       string
	PortType   string
	Transport  string // transport URI, e.g. TransportHTTP
	Operations []BindingOperation
}

// BindingOperation carries per-operation binding detail.
type BindingOperation struct {
	Name       string
	SOAPAction string
}

// Service groups ports.
type Service struct {
	Name  string
	Ports []Port
}

// Port is one network endpoint for a binding.
type Port struct {
	Name    string
	Binding string
	Address string
}

// ---------------------------------------------------------------------------
// Lookups

// PortType returns the named portType, or nil.
func (d *Definitions) PortType(name string) *PortType {
	for _, pt := range d.PortTypes {
		if pt.Name == name {
			return pt
		}
	}
	return nil
}

// Message returns the named message, or nil.
func (d *Definitions) Message(name string) *Message {
	for _, m := range d.Messages {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Binding returns the named binding, or nil.
func (d *Definitions) Binding(name string) *Binding {
	for _, b := range d.Bindings {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Service returns the named service, or nil.
func (d *Definitions) Service(name string) *Service {
	for _, s := range d.Services {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Operation finds an operation by name across all portTypes.
func (d *Definitions) Operation(name string) *Operation {
	for _, pt := range d.PortTypes {
		for _, op := range pt.Operations {
			if op.Name == name {
				return op
			}
		}
	}
	return nil
}

// OperationDetail is everything a dynamic client needs to invoke an
// operation: the request/response wrapper element names, the SOAPAction,
// the transport and the endpoint address.
type OperationDetail struct {
	Operation  *Operation
	Input      xmlutil.Name // request wrapper element
	Output     xmlutil.Name // response wrapper element (zero for one-way)
	SOAPAction string
	Transport  string
	Address    string
}

// Detail resolves the invocation detail for an operation using the first
// service port whose binding covers it.
//
// Results are memoized per operation name in a concurrency-safe cache: the
// dynamic stub calls Detail on every invocation, and the walk over
// messages, bindings and ports is pure per-Definitions state. The returned
// OperationDetail is shared by all callers and MUST be treated as
// immutable. Mutating the Definitions after the first Detail call requires
// InvalidateDetails to flush stale entries.
func (d *Definitions) Detail(opName string) (*OperationDetail, error) {
	if v, ok := d.detailCache.Load(opName); ok {
		return v.(*OperationDetail), nil
	}
	det, err := d.computeDetail(opName)
	if err != nil {
		return nil, err // misses are not cached; failed lookups are cold paths
	}
	actual, _ := d.detailCache.LoadOrStore(opName, det)
	return actual.(*OperationDetail), nil
}

// InvalidateDetails flushes the Detail cache. Call it after structurally
// mutating Definitions (messages, bindings, services) that have already
// served Detail lookups.
func (d *Definitions) InvalidateDetails() {
	d.detailCache.Range(func(k, _ interface{}) bool {
		d.detailCache.Delete(k)
		return true
	})
}

func (d *Definitions) computeDetail(opName string) (*OperationDetail, error) {
	op := d.Operation(opName)
	if op == nil {
		return nil, fmt.Errorf("wsdl: no operation %q", opName)
	}
	det := &OperationDetail{Operation: op}

	in := d.Message(op.Input)
	if in == nil || len(in.Parts) == 0 {
		return nil, fmt.Errorf("wsdl: operation %q has no resolvable input message", opName)
	}
	det.Input = in.Parts[0].Element
	if !op.OneWay() {
		out := d.Message(op.Output)
		if out == nil || len(out.Parts) == 0 {
			return nil, fmt.Errorf("wsdl: operation %q has no resolvable output message", opName)
		}
		det.Output = out.Parts[0].Element
	}

	for _, svc := range d.Services {
		for _, port := range svc.Ports {
			b := d.Binding(port.Binding)
			if b == nil {
				continue
			}
			for _, bo := range b.Operations {
				if bo.Name == opName {
					det.SOAPAction = bo.SOAPAction
					det.Transport = b.Transport
					det.Address = port.Address
					return det, nil
				}
			}
		}
	}
	return nil, fmt.Errorf("wsdl: operation %q is not exposed by any service port", opName)
}

// ---------------------------------------------------------------------------
// Validation

// Validate checks the referential integrity of the definitions: every
// operation references existing messages, every binding an existing
// portType and its operations, every port an existing binding, and (when a
// generated schema is present) every part an existing schema element.
func (d *Definitions) Validate() error {
	if d.TargetNamespace == "" {
		return fmt.Errorf("wsdl: empty targetNamespace")
	}
	msgSeen := map[string]bool{}
	for _, m := range d.Messages {
		if msgSeen[m.Name] {
			return fmt.Errorf("wsdl: duplicate message %q", m.Name)
		}
		msgSeen[m.Name] = true
		for _, p := range m.Parts {
			if p.Element.IsZero() {
				return fmt.Errorf("wsdl: message %q part %q has no element", m.Name, p.Name)
			}
			if d.Schema != nil && p.Element.Space == d.TargetNamespace && !d.Schema.HasElement(p.Element.Local) {
				return fmt.Errorf("wsdl: message %q references undeclared schema element %q", m.Name, p.Element.Local)
			}
		}
	}
	ptSeen := map[string]bool{}
	opSeen := map[string]bool{}
	for _, pt := range d.PortTypes {
		if ptSeen[pt.Name] {
			return fmt.Errorf("wsdl: duplicate portType %q", pt.Name)
		}
		ptSeen[pt.Name] = true
		for _, op := range pt.Operations {
			if opSeen[op.Name] {
				return fmt.Errorf("wsdl: duplicate operation %q", op.Name)
			}
			opSeen[op.Name] = true
			if !msgSeen[op.Input] {
				return fmt.Errorf("wsdl: operation %q input message %q undefined", op.Name, op.Input)
			}
			if op.Output != "" && !msgSeen[op.Output] {
				return fmt.Errorf("wsdl: operation %q output message %q undefined", op.Name, op.Output)
			}
		}
	}
	bindSeen := map[string]bool{}
	for _, b := range d.Bindings {
		if bindSeen[b.Name] {
			return fmt.Errorf("wsdl: duplicate binding %q", b.Name)
		}
		bindSeen[b.Name] = true
		pt := d.PortType(b.PortType)
		if pt == nil {
			return fmt.Errorf("wsdl: binding %q references undefined portType %q", b.Name, b.PortType)
		}
		for _, bo := range b.Operations {
			found := false
			for _, op := range pt.Operations {
				if op.Name == bo.Name {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("wsdl: binding %q operation %q not in portType %q", b.Name, bo.Name, b.PortType)
			}
		}
	}
	for _, s := range d.Services {
		for _, p := range s.Ports {
			if !bindSeen[p.Binding] {
				return fmt.Errorf("wsdl: service %q port %q references undefined binding %q", s.Name, p.Name, p.Binding)
			}
			if p.Address == "" {
				return fmt.Errorf("wsdl: service %q port %q has no address", s.Name, p.Name)
			}
		}
	}
	return nil
}
