package wsdl

import (
	"sync"
	"testing"
)

// TestDetailConcurrent first-touches the per-Definitions detail cache
// from many goroutines under the race detector. Every caller must see
// the same immutable *OperationDetail.
func TestDetailConcurrent(t *testing.T) {
	d := echoDefs(t)
	var wg sync.WaitGroup
	results := make([]*OperationDetail, 16)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				det, err := d.Detail("Echo")
				if err != nil {
					t.Error(err)
					return
				}
				results[g] = det
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(results); g++ {
		if results[g] != results[0] {
			t.Fatalf("goroutine %d saw a different cached detail", g)
		}
	}
	if results[0].SOAPAction != tns+"#Echo" {
		t.Fatalf("cached detail corrupted: %+v", results[0])
	}
}
