package wsdl

import (
	"context"
	"fmt"
	"testing"

	"wspeer/internal/xmlutil"
)

// Conformance fixtures: WSDL documents in the styles other 2004-era stacks
// emitted. WSPeer's locators must consume these, since the paper's whole
// point is interoperating with services it did not host.

// axisStyleWSDL mimics Apache Axis 1.x output: wsdl default namespace,
// impl/intf namespace split, apachesoap prefix noise.
const axisStyleWSDL = `<?xml version="1.0" encoding="UTF-8"?>
<definitions targetNamespace="http://example.org/axis/EchoService"
    xmlns="http://schemas.xmlsoap.org/wsdl/"
    xmlns:apachesoap="http://xml.apache.org/xml-soap"
    xmlns:impl="http://example.org/axis/EchoService"
    xmlns:wsdlsoap="http://schemas.xmlsoap.org/wsdl/soap/"
    xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <types>
    <schema targetNamespace="http://example.org/axis/EchoService"
        xmlns="http://www.w3.org/2001/XMLSchema" elementFormDefault="qualified">
      <element name="echo">
        <complexType><sequence>
          <element name="in0" type="xsd:string"/>
        </sequence></complexType>
      </element>
      <element name="echoResponse">
        <complexType><sequence>
          <element name="echoReturn" type="xsd:string"/>
        </sequence></complexType>
      </element>
    </schema>
  </types>
  <message name="echoRequest">
    <part element="impl:echo" name="parameters"/>
  </message>
  <message name="echoResponse">
    <part element="impl:echoResponse" name="parameters"/>
  </message>
  <portType name="Echo">
    <operation name="echo">
      <input message="impl:echoRequest" name="echoRequest"/>
      <output message="impl:echoResponse" name="echoResponse"/>
    </operation>
  </portType>
  <binding name="EchoSoapBinding" type="impl:Echo">
    <wsdlsoap:binding style="document" transport="http://schemas.xmlsoap.org/soap/http"/>
    <operation name="echo">
      <wsdlsoap:operation soapAction=""/>
      <input name="echoRequest"><wsdlsoap:body use="literal"/></input>
      <output name="echoResponse"><wsdlsoap:body use="literal"/></output>
    </operation>
  </binding>
  <service name="EchoService">
    <port binding="impl:EchoSoapBinding" name="Echo">
      <wsdlsoap:address location="http://host:8080/axis/services/Echo"/>
    </port>
  </service>
</definitions>`

func TestAxisStyleWSDL(t *testing.T) {
	d, err := Parse([]byte(axisStyleWSDL))
	if err != nil {
		t.Fatal(err)
	}
	if d.TargetNamespace != "http://example.org/axis/EchoService" {
		t.Fatalf("tns = %q", d.TargetNamespace)
	}
	det, err := d.Detail("echo")
	if err != nil {
		t.Fatal(err)
	}
	if det.Address != "http://host:8080/axis/services/Echo" {
		t.Fatalf("address = %q", det.Address)
	}
	if det.Input.Local != "echo" || det.Output.Local != "echoResponse" {
		t.Fatalf("wrappers: %v / %v", det.Input, det.Output)
	}
	if det.Transport != TransportHTTP {
		t.Fatalf("transport = %q", det.Transport)
	}
	// The schema element declarations are visible through the raw schemas.
	if !d.SchemaElementDeclared(xmlutil.N(d.TargetNamespace, "echo")) {
		t.Fatal("schema element lookup failed on Axis-style document")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

// dotNetStyleWSDL mimics .NET asmx output: s0 prefix, soap prefix for the
// binding namespace, definitions prefix on the WSDL namespace.
const dotNetStyleWSDL = `<?xml version="1.0" encoding="utf-8"?>
<wsdl:definitions xmlns:soap="http://schemas.xmlsoap.org/wsdl/soap/"
    xmlns:s="http://www.w3.org/2001/XMLSchema"
    xmlns:s0="http://tempuri.org/"
    targetNamespace="http://tempuri.org/"
    xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/">
  <wsdl:types>
    <s:schema elementFormDefault="qualified" targetNamespace="http://tempuri.org/">
      <s:element name="Add">
        <s:complexType><s:sequence>
          <s:element minOccurs="1" maxOccurs="1" name="a" type="s:int"/>
          <s:element minOccurs="1" maxOccurs="1" name="b" type="s:int"/>
        </s:sequence></s:complexType>
      </s:element>
      <s:element name="AddResponse">
        <s:complexType><s:sequence>
          <s:element minOccurs="1" maxOccurs="1" name="AddResult" type="s:int"/>
        </s:sequence></s:complexType>
      </s:element>
    </s:schema>
  </wsdl:types>
  <wsdl:message name="AddSoapIn"><wsdl:part name="parameters" element="s0:Add"/></wsdl:message>
  <wsdl:message name="AddSoapOut"><wsdl:part name="parameters" element="s0:AddResponse"/></wsdl:message>
  <wsdl:portType name="CalculatorSoap">
    <wsdl:operation name="Add">
      <wsdl:input message="s0:AddSoapIn"/>
      <wsdl:output message="s0:AddSoapOut"/>
    </wsdl:operation>
  </wsdl:portType>
  <wsdl:binding name="CalculatorSoap" type="s0:CalculatorSoap">
    <soap:binding transport="http://schemas.xmlsoap.org/soap/http" style="document"/>
    <wsdl:operation name="Add">
      <soap:operation soapAction="http://tempuri.org/Add" style="document"/>
      <wsdl:input><soap:body use="literal"/></wsdl:input>
      <wsdl:output><soap:body use="literal"/></wsdl:output>
    </wsdl:operation>
  </wsdl:binding>
  <wsdl:service name="Calculator">
    <wsdl:port name="CalculatorSoap" binding="s0:CalculatorSoap">
      <soap:address location="http://server/calc.asmx"/>
    </wsdl:port>
  </wsdl:service>
</wsdl:definitions>`

func TestDotNetStyleWSDL(t *testing.T) {
	d, err := Parse([]byte(dotNetStyleWSDL))
	if err != nil {
		t.Fatal(err)
	}
	det, err := d.Detail("Add")
	if err != nil {
		t.Fatal(err)
	}
	if det.SOAPAction != "http://tempuri.org/Add" {
		t.Fatalf("action = %q", det.SOAPAction)
	}
	if det.Address != "http://server/calc.asmx" {
		t.Fatalf("address = %q", det.Address)
	}
	if det.Input != xmlutil.N("http://tempuri.org/", "Add") {
		t.Fatalf("input wrapper = %v", det.Input)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

// gSoapStyleWSDL exercises a one-way operation and multiple ports sharing
// a binding.
const gSoapStyleWSDL = `<wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
    xmlns:tns="urn:notify" xmlns:ws="http://schemas.xmlsoap.org/wsdl/soap/"
    targetNamespace="urn:notify">
  <wsdl:message name="NotifyIn"><wsdl:part name="p" element="tns:notify"/></wsdl:message>
  <wsdl:portType name="NotifyPT">
    <wsdl:operation name="notify"><wsdl:input message="tns:NotifyIn"/></wsdl:operation>
  </wsdl:portType>
  <wsdl:binding name="NotifyB" type="tns:NotifyPT">
    <ws:binding style="document" transport="http://schemas.xmlsoap.org/soap/http"/>
    <wsdl:operation name="notify">
      <ws:operation soapAction="urn:notify#notify"/>
      <wsdl:input><ws:body use="literal"/></wsdl:input>
    </wsdl:operation>
  </wsdl:binding>
  <wsdl:service name="NotifySvc">
    <wsdl:port name="A" binding="tns:NotifyB"><ws:address location="http://a/notify"/></wsdl:port>
    <wsdl:port name="B" binding="tns:NotifyB"><ws:address location="http://b/notify"/></wsdl:port>
  </wsdl:service>
</wsdl:definitions>`

func TestOneWayMultiPortWSDL(t *testing.T) {
	d, err := Parse([]byte(gSoapStyleWSDL))
	if err != nil {
		t.Fatal(err)
	}
	op := d.Operation("notify")
	if op == nil || !op.OneWay() {
		t.Fatalf("one-way lost: %+v", op)
	}
	det, err := d.Detail("notify")
	if err != nil {
		t.Fatal(err)
	}
	// The first port wins.
	if det.Address != "http://a/notify" {
		t.Fatalf("address = %q", det.Address)
	}
	if len(d.Service("NotifySvc").Ports) != 2 {
		t.Fatal("second port lost")
	}
}

// Split WSDL: a service document importing an interface document, which in
// turn imports the message/type document — the classic three-layer layout.
const splitServiceDoc = `<wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
    xmlns:tns="urn:split" xmlns:ws="http://schemas.xmlsoap.org/wsdl/soap/"
    targetNamespace="urn:split">
  <wsdl:import namespace="urn:split" location="http://docs/interface.wsdl"/>
  <wsdl:service name="SplitSvc">
    <wsdl:port name="P" binding="tns:EchoB"><ws:address location="http://host/split"/></wsdl:port>
  </wsdl:service>
</wsdl:definitions>`

const splitInterfaceDoc = `<wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
    xmlns:tns="urn:split" xmlns:ws="http://schemas.xmlsoap.org/wsdl/soap/"
    targetNamespace="urn:split">
  <wsdl:import namespace="urn:split" location="http://docs/messages.wsdl"/>
  <wsdl:portType name="EchoPT">
    <wsdl:operation name="echo">
      <wsdl:input message="tns:EchoIn"/><wsdl:output message="tns:EchoOut"/>
    </wsdl:operation>
  </wsdl:portType>
  <wsdl:binding name="EchoB" type="tns:EchoPT">
    <ws:binding style="document" transport="http://schemas.xmlsoap.org/soap/http"/>
    <wsdl:operation name="echo">
      <ws:operation soapAction="urn:split#echo"/>
      <wsdl:input><ws:body use="literal"/></wsdl:input>
      <wsdl:output><ws:body use="literal"/></wsdl:output>
    </wsdl:operation>
  </wsdl:binding>
</wsdl:definitions>`

const splitMessagesDoc = `<wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
    xmlns:tns="urn:split" targetNamespace="urn:split">
  <wsdl:message name="EchoIn"><wsdl:part name="p" element="tns:echo"/></wsdl:message>
  <wsdl:message name="EchoOut"><wsdl:part name="p" element="tns:echoResponse"/></wsdl:message>
</wsdl:definitions>`

func splitFetcher(t *testing.T) Fetcher {
	docs := map[string]string{
		"http://docs/interface.wsdl": splitInterfaceDoc,
		"http://docs/messages.wsdl":  splitMessagesDoc,
	}
	return func(_ context.Context, location string) ([]byte, error) {
		doc, ok := docs[location]
		if !ok {
			return nil, fmt.Errorf("no such document %q", location)
		}
		return []byte(doc), nil
	}
}

func TestSplitWSDLImports(t *testing.T) {
	d, err := Parse([]byte(splitServiceDoc))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Imports) != 1 || d.Imports[0].Location != "http://docs/interface.wsdl" {
		t.Fatalf("imports = %+v", d.Imports)
	}
	// Before resolution the operation is unknown.
	if _, err := d.Detail("echo"); err == nil {
		t.Fatal("detail resolved without imports")
	}
	if err := d.ResolveImports(context.Background(), splitFetcher(t)); err != nil {
		t.Fatal(err)
	}
	det, err := d.Detail("echo")
	if err != nil {
		t.Fatal(err)
	}
	if det.Address != "http://host/split" || det.SOAPAction != "urn:split#echo" {
		t.Fatalf("detail: %+v", det)
	}
	if det.Input.Local != "echo" {
		t.Fatalf("input = %v", det.Input)
	}
	if len(d.Imports) != 0 {
		t.Fatal("imports not consumed")
	}
}

func TestImportCycleTerminates(t *testing.T) {
	a := `<wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/" targetNamespace="urn:a">
	  <wsdl:import namespace="urn:b" location="b"/></wsdl:definitions>`
	b := `<wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/" targetNamespace="urn:b">
	  <wsdl:import namespace="urn:a" location="a"/></wsdl:definitions>`
	docs := map[string]string{"a": a, "b": b}
	fetch := func(_ context.Context, loc string) ([]byte, error) {
		return []byte(docs[loc]), nil
	}
	d, err := Parse([]byte(a))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ResolveImports(context.Background(), fetch); err != nil {
		t.Fatalf("cycle did not terminate cleanly: %v", err)
	}
}

func TestImportErrors(t *testing.T) {
	d, err := Parse([]byte(splitServiceDoc))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ResolveImports(context.Background(), nil); err == nil {
		t.Fatal("nil fetcher accepted")
	}
	failing := func(context.Context, string) ([]byte, error) {
		return nil, fmt.Errorf("network down")
	}
	if err := d.ResolveImports(context.Background(), failing); err == nil {
		t.Fatal("fetch failure swallowed")
	}
	// Unparseable import.
	d2, _ := Parse([]byte(splitServiceDoc))
	garbage := func(context.Context, string) ([]byte, error) { return []byte("junk"), nil }
	if err := d2.ResolveImports(context.Background(), garbage); err == nil {
		t.Fatal("garbage import accepted")
	}
}
