package wsdl

import (
	"context"
	"fmt"
	"strings"

	"wspeer/internal/xmlutil"
	"wspeer/internal/xsd"
)

// Parse reads a WSDL 1.1 document.
func Parse(data []byte) (*Definitions, error) {
	root, err := xmlutil.ParseBytes(data)
	if err != nil {
		return nil, fmt.Errorf("wsdl: %w", err)
	}
	return FromElement(root)
}

// FromElement interprets a parsed element tree as WSDL definitions.
func FromElement(root *xmlutil.Element) (*Definitions, error) {
	if root.Name != xmlutil.N(Namespace, "definitions") {
		return nil, fmt.Errorf("wsdl: document element is %v, not wsdl:definitions", root.Name)
	}
	d := &Definitions{}
	if v, ok := root.Attr(xmlutil.N("", "name")); ok {
		d.Name = v
	}
	if v, ok := root.Attr(xmlutil.N("", "targetNamespace")); ok {
		d.TargetNamespace = v
	} else {
		return nil, fmt.Errorf("wsdl: definitions has no targetNamespace")
	}

	for _, imp := range root.Children(xmlutil.N(Namespace, "import")) {
		i := Import{}
		i.Namespace, _ = imp.Attr(xmlutil.N("", "namespace"))
		i.Location, _ = imp.Attr(xmlutil.N("", "location"))
		if i.Location != "" {
			d.Imports = append(d.Imports, i)
		}
	}

	if types := root.Child(xmlutil.N(Namespace, "types")); types != nil {
		for _, sch := range types.Children(xmlutil.N(xsd.Namespace, "schema")) {
			d.RawSchemas = append(d.RawSchemas, sch)
		}
	}

	for _, mel := range root.Children(xmlutil.N(Namespace, "message")) {
		m := &Message{}
		m.Name, _ = mel.Attr(xmlutil.N("", "name"))
		for _, pel := range mel.Children(xmlutil.N(Namespace, "part")) {
			p := Part{}
			p.Name, _ = pel.Attr(xmlutil.N("", "name"))
			if ref, ok := pel.Attr(xmlutil.N("", "element")); ok {
				qn, err := pel.ResolveQName(ref)
				if err != nil {
					return nil, fmt.Errorf("wsdl: message %q part %q: %w", m.Name, p.Name, err)
				}
				p.Element = qn
			}
			m.Parts = append(m.Parts, p)
		}
		d.Messages = append(d.Messages, m)
	}

	for _, ptel := range root.Children(xmlutil.N(Namespace, "portType")) {
		pt := &PortType{}
		pt.Name, _ = ptel.Attr(xmlutil.N("", "name"))
		for _, opel := range ptel.Children(xmlutil.N(Namespace, "operation")) {
			op := &Operation{}
			op.Name, _ = opel.Attr(xmlutil.N("", "name"))
			if doc := opel.Child(xmlutil.N(Namespace, "documentation")); doc != nil {
				op.Doc = doc.TrimmedText()
			}
			if in := opel.Child(xmlutil.N(Namespace, "input")); in != nil {
				ref, _ := in.Attr(xmlutil.N("", "message"))
				op.Input = localOf(in, ref)
			}
			if out := opel.Child(xmlutil.N(Namespace, "output")); out != nil {
				ref, _ := out.Attr(xmlutil.N("", "message"))
				op.Output = localOf(out, ref)
			}
			pt.Operations = append(pt.Operations, op)
		}
		d.PortTypes = append(d.PortTypes, pt)
	}

	for _, bel := range root.Children(xmlutil.N(Namespace, "binding")) {
		b := &Binding{}
		b.Name, _ = bel.Attr(xmlutil.N("", "name"))
		if ref, ok := bel.Attr(xmlutil.N("", "type")); ok {
			b.PortType = localOf(bel, ref)
		}
		if sb := bel.Child(xmlutil.N(SOAPNamespace, "binding")); sb != nil {
			b.Transport, _ = sb.Attr(xmlutil.N("", "transport"))
		}
		for _, boel := range bel.Children(xmlutil.N(Namespace, "operation")) {
			bo := BindingOperation{}
			bo.Name, _ = boel.Attr(xmlutil.N("", "name"))
			if so := boel.Child(xmlutil.N(SOAPNamespace, "operation")); so != nil {
				bo.SOAPAction, _ = so.Attr(xmlutil.N("", "soapAction"))
			}
			b.Operations = append(b.Operations, bo)
		}
		d.Bindings = append(d.Bindings, b)
	}

	for _, sel := range root.Children(xmlutil.N(Namespace, "service")) {
		s := &Service{}
		s.Name, _ = sel.Attr(xmlutil.N("", "name"))
		for _, pel := range sel.Children(xmlutil.N(Namespace, "port")) {
			p := Port{}
			p.Name, _ = pel.Attr(xmlutil.N("", "name"))
			if ref, ok := pel.Attr(xmlutil.N("", "binding")); ok {
				p.Binding = localOf(pel, ref)
			}
			if addr := pel.Child(xmlutil.N(SOAPNamespace, "address")); addr != nil {
				p.Address, _ = addr.Attr(xmlutil.N("", "location"))
			}
			s.Ports = append(s.Ports, p)
		}
		d.Services = append(d.Services, s)
	}

	return d, nil
}

// localOf resolves a QName reference and returns its local part. Cross-
// namespace references fall back to the lexical local part so that
// single-document WSDLs from lenient generators still parse.
func localOf(scope *xmlutil.Element, ref string) string {
	if qn, err := scope.ResolveQName(ref); err == nil {
		return qn.Local
	}
	if i := strings.LastIndexByte(ref, ':'); i >= 0 {
		return ref[i+1:]
	}
	return ref
}

// SchemaElementDeclared reports whether any raw schema in the parsed
// document declares a top-level element with the given name.
func (d *Definitions) SchemaElementDeclared(name xmlutil.Name) bool {
	for _, sch := range d.RawSchemas {
		tnsAttr, _ := sch.Attr(xmlutil.N("", "targetNamespace"))
		if name.Space != "" && tnsAttr != name.Space {
			continue
		}
		for _, el := range sch.Children(xmlutil.N(xsd.Namespace, "element")) {
			if n, _ := el.Attr(xmlutil.N("", "name")); n == name.Local {
				return true
			}
		}
	}
	return false
}

// Fetcher retrieves an imported document by location.
type Fetcher func(ctx context.Context, location string) ([]byte, error)

// maxImportDepth bounds transitive import chains.
const maxImportDepth = 8

// ResolveImports fetches every wsdl:import (transitively, cycle-safe,
// depth-bounded) and merges the imported definitions' schemas, messages,
// portTypes, bindings and services into d. Real-world WSDL is frequently
// split this way (interface document imported by a service document).
func (d *Definitions) ResolveImports(ctx context.Context, fetch Fetcher) error {
	if fetch == nil {
		return fmt.Errorf("wsdl: ResolveImports needs a Fetcher")
	}
	seen := map[string]bool{}
	return d.resolveImports(ctx, fetch, seen, 0)
}

func (d *Definitions) resolveImports(ctx context.Context, fetch Fetcher, seen map[string]bool, depth int) error {
	if depth > maxImportDepth {
		return fmt.Errorf("wsdl: import chain deeper than %d documents", maxImportDepth)
	}
	imports := d.Imports
	d.Imports = nil
	for _, imp := range imports {
		if seen[imp.Location] {
			continue // cycle or diamond: already merged
		}
		seen[imp.Location] = true
		data, err := fetch(ctx, imp.Location)
		if err != nil {
			return fmt.Errorf("wsdl: importing %q: %w", imp.Location, err)
		}
		sub, err := Parse(data)
		if err != nil {
			return fmt.Errorf("wsdl: importing %q: %w", imp.Location, err)
		}
		if err := sub.resolveImports(ctx, fetch, seen, depth+1); err != nil {
			return err
		}
		d.RawSchemas = append(d.RawSchemas, sub.RawSchemas...)
		d.Messages = append(d.Messages, sub.Messages...)
		d.PortTypes = append(d.PortTypes, sub.PortTypes...)
		d.Bindings = append(d.Bindings, sub.Bindings...)
		d.Services = append(d.Services, sub.Services...)
	}
	return nil
}
