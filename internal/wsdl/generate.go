package wsdl

import (
	"fmt"

	"wspeer/internal/xmlutil"
)

// Element renders the definitions as a WSDL 1.1 document element.
func (d *Definitions) Element() (*xmlutil.Element, error) {
	root := xmlutil.NewElement(xmlutil.N(Namespace, "definitions"))
	if d.Name != "" {
		root.SetAttr(xmlutil.N("", "name"), d.Name)
	}
	root.SetAttr(xmlutil.N("", "targetNamespace"), d.TargetNamespace)
	root.DeclarePrefix("tns", d.TargetNamespace)
	root.DeclarePrefix("wsdl", Namespace)
	root.DeclarePrefix("wsdlsoap", SOAPNamespace)

	if d.Schema != nil || len(d.RawSchemas) > 0 {
		types := root.NewChild(xmlutil.N(Namespace, "types"))
		if d.Schema != nil {
			schemaEl, err := d.Schema.Element()
			if err != nil {
				return nil, fmt.Errorf("wsdl: schema: %w", err)
			}
			types.AddChild(schemaEl)
		}
		for _, raw := range d.RawSchemas {
			types.AddChild(raw.Clone())
		}
	}

	for _, m := range d.Messages {
		mel := root.NewChild(xmlutil.N(Namespace, "message"))
		mel.SetAttr(xmlutil.N("", "name"), m.Name)
		for _, p := range m.Parts {
			pel := mel.NewChild(xmlutil.N(Namespace, "part"))
			pel.SetAttr(xmlutil.N("", "name"), p.Name)
			pel.SetAttr(xmlutil.N("", "element"), xmlutil.QNameValue(root, p.Element))
		}
	}

	for _, pt := range d.PortTypes {
		ptel := root.NewChild(xmlutil.N(Namespace, "portType"))
		ptel.SetAttr(xmlutil.N("", "name"), pt.Name)
		for _, op := range pt.Operations {
			opel := ptel.NewChild(xmlutil.N(Namespace, "operation"))
			opel.SetAttr(xmlutil.N("", "name"), op.Name)
			if op.Doc != "" {
				opel.NewChild(xmlutil.N(Namespace, "documentation")).SetText(op.Doc)
			}
			in := opel.NewChild(xmlutil.N(Namespace, "input"))
			in.SetAttr(xmlutil.N("", "message"), xmlutil.QNameValue(root, xmlutil.N(d.TargetNamespace, op.Input)))
			if !op.OneWay() {
				out := opel.NewChild(xmlutil.N(Namespace, "output"))
				out.SetAttr(xmlutil.N("", "message"), xmlutil.QNameValue(root, xmlutil.N(d.TargetNamespace, op.Output)))
			}
		}
	}

	for _, b := range d.Bindings {
		bel := root.NewChild(xmlutil.N(Namespace, "binding"))
		bel.SetAttr(xmlutil.N("", "name"), b.Name)
		bel.SetAttr(xmlutil.N("", "type"), xmlutil.QNameValue(root, xmlutil.N(d.TargetNamespace, b.PortType)))
		sb := bel.NewChild(xmlutil.N(SOAPNamespace, "binding"))
		sb.SetAttr(xmlutil.N("", "style"), "document")
		sb.SetAttr(xmlutil.N("", "transport"), b.Transport)
		for _, bo := range b.Operations {
			boel := bel.NewChild(xmlutil.N(Namespace, "operation"))
			boel.SetAttr(xmlutil.N("", "name"), bo.Name)
			so := boel.NewChild(xmlutil.N(SOAPNamespace, "operation"))
			so.SetAttr(xmlutil.N("", "soapAction"), bo.SOAPAction)
			in := boel.NewChild(xmlutil.N(Namespace, "input"))
			in.NewChild(xmlutil.N(SOAPNamespace, "body")).SetAttr(xmlutil.N("", "use"), "literal")
			op := d.Operation(bo.Name)
			if op != nil && !op.OneWay() {
				out := boel.NewChild(xmlutil.N(Namespace, "output"))
				out.NewChild(xmlutil.N(SOAPNamespace, "body")).SetAttr(xmlutil.N("", "use"), "literal")
			}
		}
	}

	for _, s := range d.Services {
		sel := root.NewChild(xmlutil.N(Namespace, "service"))
		sel.SetAttr(xmlutil.N("", "name"), s.Name)
		for _, p := range s.Ports {
			pel := sel.NewChild(xmlutil.N(Namespace, "port"))
			pel.SetAttr(xmlutil.N("", "name"), p.Name)
			pel.SetAttr(xmlutil.N("", "binding"), xmlutil.QNameValue(root, xmlutil.N(d.TargetNamespace, p.Binding)))
			addr := pel.NewChild(xmlutil.N(SOAPNamespace, "address"))
			addr.SetAttr(xmlutil.N("", "location"), p.Address)
		}
	}

	return root, nil
}

// Marshal renders the definitions as an indented WSDL document.
func (d *Definitions) Marshal() ([]byte, error) {
	el, err := d.Element()
	if err != nil {
		return nil, err
	}
	return xmlutil.MarshalIndent(el), nil
}
