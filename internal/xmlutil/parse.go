package xmlutil

import (
	"fmt"
	"sync"
)

// A hand-rolled, namespace-aware XML parser for the invocation fast path.
//
// encoding/xml's Decoder allocates per token — name strings, attribute
// slices, stack nodes — which made parsing the dominant allocation source
// on the SOAP request/response path. This parser works over a byte slice,
// interns recurring names (SOAP envelopes repeat the same handful), and
// batch-allocates Elements in slabs. It accepts the same documents the
// old Decoder-based loop accepted for the protocols in this system:
// elements, attributes, namespace declarations, character data, CDATA,
// comments, processing instructions and directives (the latter three are
// skipped, as before). DTD entity definitions are not supported; only the
// five predefined entities and character references are expanded, which
// matches encoding/xml's default behaviour with no custom Entity map.

// xmlNamespace is the URI the reserved "xml" prefix is bound to.
const xmlNamespace = "http://www.w3.org/XML/1998/namespace"

const (
	internMapMax  = 1024     // entries kept in a pooled intern map
	internTextMax = 64       // longest string worth interning
	elementSlab   = 32       // Elements allocated per batch
	scratchMax    = 64 << 10 // largest entity-decoding buffer worth pooling
)

type rawName struct {
	prefix, local []byte
}

type parser struct {
	data    []byte
	pos     int
	intern  map[string]string
	slab    []Element
	tags    []rawName // open-element stack, for end-tag matching
	scratch []byte    // entity-decoding buffer
	pend    []pendingAttr
}

var parserPool = sync.Pool{
	New: func() interface{} {
		return &parser{intern: make(map[string]string)}
	},
}

// ParseBytes parses an XML document held in b.
func ParseBytes(b []byte) (*Element, error) {
	p := parserPool.Get().(*parser)
	p.data = b
	p.pos = 0
	p.slab = nil
	p.tags = p.tags[:0]
	root, err := p.parse()
	p.data = nil
	p.slab = nil
	if len(p.intern) > internMapMax {
		p.intern = make(map[string]string)
	}
	// tags and pend hold byte slices into the parsed document; zero the
	// full capacity (truncation alone leaves stale entries between len and
	// cap) so a pooled parser does not pin the caller's buffer, and drop an
	// outsized scratch buffer.
	tags := p.tags[:cap(p.tags)]
	for i := range tags {
		tags[i] = rawName{}
	}
	p.tags = tags[:0]
	pend := p.pend[:cap(p.pend)]
	for i := range pend {
		pend[i] = pendingAttr{}
	}
	p.pend = pend[:0]
	if cap(p.scratch) > scratchMax {
		p.scratch = nil
	}
	parserPool.Put(p)
	return root, err
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("xmlutil: parse: "+format, args...)
}

// str interns a byte slice as a string: recurring names and whitespace
// runs are allocated once per pooled parser, not once per occurrence.
func (p *parser) str(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) <= internTextMax {
		if s, ok := p.intern[string(b)]; ok { // no alloc: map lookup by []byte key
			return s
		}
		s := string(b)
		p.intern[s] = s
		return s
	}
	return string(b)
}

func (p *parser) newElement(name Name) *Element {
	if len(p.slab) == 0 {
		p.slab = make([]Element, elementSlab)
	}
	el := &p.slab[0]
	p.slab = p.slab[1:]
	el.Name = name
	return el
}

func isXMLSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func (p *parser) skipSpace() {
	for p.pos < len(p.data) && isXMLSpace(p.data[p.pos]) {
		p.pos++
	}
}

// name scans an XML name (everything up to a delimiter). The caller
// validates emptiness; character-level name validity is not enforced,
// matching the leniency the protocols here rely on.
func (p *parser) name() []byte {
	start := p.pos
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		if isXMLSpace(c) || c == '>' || c == '/' || c == '=' || c == '<' {
			break
		}
		p.pos++
	}
	return p.data[start:p.pos]
}

func splitQName(b []byte) rawName {
	for i, c := range b {
		if c == ':' {
			return rawName{prefix: b[:i], local: b[i+1:]}
		}
	}
	return rawName{local: b}
}

// resolveSpace maps a prefix to its namespace URI in the scope of el
// (which already carries this element's own declarations). Unknown
// prefixes resolve to the prefix itself, as encoding/xml does.
func resolveSpace(el *Element, prefix string, isElement bool) string {
	if prefix == "" {
		if !isElement {
			return ""
		}
		if uri, ok := el.LookupPrefix(""); ok {
			return uri
		}
		return ""
	}
	if prefix == "xml" {
		return xmlNamespace
	}
	if uri, ok := el.LookupPrefix(prefix); ok {
		return uri
	}
	return prefix
}

// text decodes character data (entity references expanded, \r\n and \r
// normalized to \n) and returns it interned when short.
func (p *parser) text(raw []byte) (string, error) {
	plain := true
	for _, c := range raw {
		if c == '&' || c == '\r' {
			plain = false
			break
		}
	}
	if plain {
		return p.str(raw), nil
	}
	out := p.scratch[:0]
	for i := 0; i < len(raw); {
		switch c := raw[i]; c {
		case '\r':
			out = append(out, '\n')
			i++
			if i < len(raw) && raw[i] == '\n' {
				i++
			}
		case '&':
			rep, n, err := decodeEntity(raw[i:])
			if err != nil {
				return "", err
			}
			out = append(out, rep...)
			i += n
		default:
			out = append(out, c)
			i++
		}
	}
	p.scratch = out
	return p.str(out), nil
}

// decodeEntity expands one entity or character reference at the start of
// b, returning the replacement and the number of input bytes consumed.
func decodeEntity(b []byte) (rep []byte, n int, err error) {
	end := -1
	for i := 1; i < len(b) && i <= 12; i++ {
		if b[i] == ';' {
			end = i
			break
		}
	}
	if end < 0 {
		return nil, 0, fmt.Errorf("xmlutil: parse: invalid entity reference")
	}
	ent := b[1:end]
	n = end + 1
	switch string(ent) {
	case "lt":
		return []byte("<"), n, nil
	case "gt":
		return []byte(">"), n, nil
	case "amp":
		return []byte("&"), n, nil
	case "apos":
		return []byte("'"), n, nil
	case "quot":
		return []byte(`"`), n, nil
	}
	if len(ent) > 1 && ent[0] == '#' {
		var r rune
		digits := ent[1:]
		base := 10
		if digits[0] == 'x' || digits[0] == 'X' {
			base = 16
			digits = digits[1:]
		}
		if len(digits) == 0 {
			return nil, 0, fmt.Errorf("xmlutil: parse: invalid character reference &%s;", ent)
		}
		for _, c := range digits {
			var d rune
			switch {
			case c >= '0' && c <= '9':
				d = rune(c - '0')
			case base == 16 && c >= 'a' && c <= 'f':
				d = rune(c-'a') + 10
			case base == 16 && c >= 'A' && c <= 'F':
				d = rune(c-'A') + 10
			default:
				return nil, 0, fmt.Errorf("xmlutil: parse: invalid character reference &%s;", ent)
			}
			r = r*rune(base) + d
			if r > 0x10FFFF {
				return nil, 0, fmt.Errorf("xmlutil: parse: character reference &%s; out of range", ent)
			}
		}
		var buf [4]byte
		return buf[:encodeRune(buf[:], r)], n, nil
	}
	return nil, 0, fmt.Errorf("xmlutil: parse: unknown entity &%s;", ent)
}

// encodeRune is utf8.EncodeRune without pulling the package in for one
// call site.
func encodeRune(buf []byte, r rune) int {
	switch {
	case r < 0x80:
		buf[0] = byte(r)
		return 1
	case r < 0x800:
		buf[0] = 0xC0 | byte(r>>6)
		buf[1] = 0x80 | byte(r)&0x3F
		return 2
	case r < 0x10000:
		buf[0] = 0xE0 | byte(r>>12)
		buf[1] = 0x80 | byte(r>>6)&0x3F
		buf[2] = 0x80 | byte(r)&0x3F
		return 3
	default:
		buf[0] = 0xF0 | byte(r>>18)
		buf[1] = 0x80 | byte(r>>12)&0x3F
		buf[2] = 0x80 | byte(r>>6)&0x3F
		buf[3] = 0x80 | byte(r)&0x3F
		return 4
	}
}

func (p *parser) parse() (*Element, error) {
	var root, cur *Element
	for p.pos < len(p.data) {
		// Character data up to the next markup.
		start := p.pos
		for p.pos < len(p.data) && p.data[p.pos] != '<' {
			p.pos++
		}
		if p.pos > start && cur != nil {
			s, err := p.text(p.data[start:p.pos])
			if err != nil {
				return nil, err
			}
			cur.children = append(cur.children, Text(s))
		}
		if p.pos >= len(p.data) {
			break
		}
		p.pos++ // consume '<'
		if p.pos >= len(p.data) {
			return nil, p.errf("unexpected EOF after '<'")
		}
		switch p.data[p.pos] {
		case '?':
			if !p.skipPast("?>") {
				return nil, p.errf("unterminated processing instruction")
			}
		case '!':
			if err := p.bang(cur); err != nil {
				return nil, err
			}
		case '/':
			p.pos++
			raw := splitQName(p.name())
			p.skipSpace()
			if p.pos >= len(p.data) || p.data[p.pos] != '>' {
				return nil, p.errf("malformed end tag </%s", raw.local)
			}
			p.pos++
			if cur == nil || len(p.tags) == 0 {
				return nil, p.errf("unbalanced end element %s", string(raw.local))
			}
			open := p.tags[len(p.tags)-1]
			if string(open.local) != string(raw.local) || string(open.prefix) != string(raw.prefix) {
				return nil, p.errf("end tag </%s> does not match <%s>", string(raw.local), string(open.local))
			}
			p.tags = p.tags[:len(p.tags)-1]
			cur = cur.parent
		default:
			el, closed, err := p.startTag(cur)
			if err != nil {
				return nil, err
			}
			if cur == nil {
				if root != nil {
					return nil, p.errf("multiple document elements")
				}
				root = el
			}
			if !closed {
				cur = el
			}
		}
	}
	if root == nil {
		return nil, p.errf("empty document")
	}
	if cur != nil {
		return nil, p.errf("unexpected EOF inside <%s>", cur.Name.Local)
	}
	return root, nil
}

// bang handles "<!..." constructs: comments and directives are skipped,
// CDATA becomes text.
func (p *parser) bang(cur *Element) error {
	rest := p.data[p.pos:]
	switch {
	case len(rest) >= 3 && rest[1] == '-' && rest[2] == '-':
		p.pos += 3
		if !p.skipPast("-->") {
			return p.errf("unterminated comment")
		}
	case len(rest) >= 8 && string(rest[1:8]) == "[CDATA[":
		p.pos += 8
		start := p.pos
		for {
			if p.pos+2 >= len(p.data) {
				return p.errf("unterminated CDATA section")
			}
			if p.data[p.pos] == ']' && p.data[p.pos+1] == ']' && p.data[p.pos+2] == '>' {
				break
			}
			p.pos++
		}
		if cur != nil {
			cur.children = append(cur.children, Text(p.str(p.data[start:p.pos])))
		}
		p.pos += 3
	default:
		// A directive (e.g. DOCTYPE); skip it, tracking bracket nesting
		// for an internal subset.
		depth := 1
		for p.pos < len(p.data) {
			switch p.data[p.pos] {
			case '<':
				depth++
			case '>':
				depth--
			}
			p.pos++
			if depth == 0 {
				return nil
			}
		}
		return p.errf("unterminated directive")
	}
	return nil
}

func (p *parser) skipPast(delim string) bool {
	for p.pos+len(delim) <= len(p.data) {
		if string(p.data[p.pos:p.pos+len(delim)]) == delim {
			p.pos += len(delim)
			return true
		}
		p.pos++
	}
	return false
}

// attrBuf accumulates one start tag's attributes before namespace
// resolution (declarations on the element must be in scope first).
type pendingAttr struct {
	name  rawName
	value string
}

func (p *parser) startTag(parent *Element) (el *Element, selfClosed bool, err error) {
	rawEl := splitQName(p.name())
	if len(rawEl.local) == 0 {
		return nil, false, p.errf("malformed start tag")
	}
	el = p.newElement(Name{})
	if parent != nil {
		parent.AddChild(el)
	}

	pending := p.pend[:0]
	for {
		p.skipSpace()
		if p.pos >= len(p.data) {
			return nil, false, p.errf("unexpected EOF in <%s>", string(rawEl.local))
		}
		c := p.data[p.pos]
		if c == '>' {
			p.pos++
			break
		}
		if c == '/' {
			p.pos++
			if p.pos >= len(p.data) || p.data[p.pos] != '>' {
				return nil, false, p.errf("malformed empty-element tag <%s", string(rawEl.local))
			}
			p.pos++
			selfClosed = true
			break
		}
		raw := splitQName(p.name())
		if len(raw.local) == 0 {
			return nil, false, p.errf("malformed attribute in <%s>", string(rawEl.local))
		}
		p.skipSpace()
		if p.pos >= len(p.data) || p.data[p.pos] != '=' {
			return nil, false, p.errf("attribute %s in <%s> has no value", string(raw.local), string(rawEl.local))
		}
		p.pos++
		p.skipSpace()
		if p.pos >= len(p.data) || (p.data[p.pos] != '"' && p.data[p.pos] != '\'') {
			return nil, false, p.errf("unquoted attribute value in <%s>", string(rawEl.local))
		}
		quote := p.data[p.pos]
		p.pos++
		vstart := p.pos
		for p.pos < len(p.data) && p.data[p.pos] != quote {
			p.pos++
		}
		if p.pos >= len(p.data) {
			return nil, false, p.errf("unterminated attribute value in <%s>", string(rawEl.local))
		}
		val, err := p.text(p.data[vstart:p.pos])
		if err != nil {
			return nil, false, err
		}
		p.pos++ // closing quote

		switch {
		case len(raw.prefix) == 0 && string(raw.local) == "xmlns":
			el.DeclarePrefix("", val)
		case string(raw.prefix) == "xmlns":
			el.DeclarePrefix(p.str(raw.local), val)
		default:
			pending = append(pending, pendingAttr{name: raw, value: val})
		}
	}

	// All declarations are in scope; resolve the element and attribute
	// names.
	el.Name = Name{
		Space: resolveSpace(el, p.str(rawEl.prefix), true),
		Local: p.str(rawEl.local),
	}
	if len(pending) > 0 {
		el.Attrs = make([]Attr, len(pending))
		for i, a := range pending {
			el.Attrs[i] = Attr{
				Name: Name{
					Space: resolveSpace(el, p.str(a.name.prefix), false),
					Local: p.str(a.name.local),
				},
				Value: a.value,
			}
		}
	}
	p.pend = pending[:0]
	if !selfClosed {
		p.tags = append(p.tags, rawEl)
	}
	return el, selfClosed, nil
}
