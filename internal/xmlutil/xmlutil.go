// Package xmlutil provides a namespace-aware XML element tree.
//
// The standard encoding/xml struct marshalling cannot express the prefix
// and QName fidelity that SOAP, WSDL and P2PS advertisements require:
// qualified names appear not only as element and attribute names but also
// inside attribute values and character data (e.g. WSDL's
// element="tns:EchoRequest"). This package keeps namespace declarations as
// first-class scope information on each element so such references can be
// resolved, and serializes trees with deterministic prefix assignment.
package xmlutil

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Name is a namespace-qualified XML name. Space is the namespace URI (empty
// for unqualified names) and Local the local part.
type Name struct {
	Space string
	Local string
}

// N is shorthand for constructing a Name.
func N(space, local string) Name { return Name{Space: space, Local: local} }

// String renders the name in Clark notation: {space}local.
func (n Name) String() string {
	if n.Space == "" {
		return n.Local
	}
	return "{" + n.Space + "}" + n.Local
}

// IsZero reports whether the name is empty.
func (n Name) IsZero() bool { return n.Space == "" && n.Local == "" }

// Attr is a single attribute. Namespace declarations are not represented as
// Attrs; they live in the element's prefix scope.
type Attr struct {
	Name  Name
	Value string
}

// Node is a child of an Element: either *Element or Text.
type Node interface{ isNode() }

// Text is character data within an element.
type Text string

func (Text) isNode()     {}
func (*Element) isNode() {}

// Element is a node in the tree.
type Element struct {
	Name     Name
	Attrs    []Attr
	children []Node
	parent   *Element
	// nsDecls maps prefix -> namespace URI declared on this element.
	// The empty prefix is the default namespace.
	nsDecls map[string]string
}

// NewElement returns a parentless element with the given name.
func NewElement(name Name) *Element {
	return &Element{Name: name}
}

// Parent returns the enclosing element, or nil at the root.
func (e *Element) Parent() *Element { return e.parent }

// Nodes returns the child nodes in document order. The returned slice must
// not be modified.
func (e *Element) Nodes() []Node { return e.children }

// Elements returns all child elements in document order.
func (e *Element) Elements() []*Element {
	var out []*Element
	for _, n := range e.children {
		if el, ok := n.(*Element); ok {
			out = append(out, el)
		}
	}
	return out
}

// Children returns all child elements with the given name.
func (e *Element) Children(name Name) []*Element {
	var out []*Element
	for _, n := range e.children {
		if el, ok := n.(*Element); ok && el.Name == name {
			out = append(out, el)
		}
	}
	return out
}

// Child returns the first child element with the given name, or nil.
func (e *Element) Child(name Name) *Element {
	for _, n := range e.children {
		if el, ok := n.(*Element); ok && el.Name == name {
			return el
		}
	}
	return nil
}

// ChildLocal returns the first child element whose local name matches,
// regardless of namespace, or nil.
func (e *Element) ChildLocal(local string) *Element {
	for _, n := range e.children {
		if el, ok := n.(*Element); ok && el.Name.Local == local {
			return el
		}
	}
	return nil
}

// Find returns the first descendant (depth-first, including e itself) with
// the given name, or nil.
func (e *Element) Find(name Name) *Element {
	if e.Name == name {
		return e
	}
	for _, n := range e.children {
		if el, ok := n.(*Element); ok {
			if found := el.Find(name); found != nil {
				return found
			}
		}
	}
	return nil
}

// FindAll returns every descendant (including e itself) with the given name.
func (e *Element) FindAll(name Name) []*Element {
	var out []*Element
	e.walk(func(el *Element) {
		if el.Name == name {
			out = append(out, el)
		}
	})
	return out
}

func (e *Element) walk(f func(*Element)) {
	f(e)
	for _, n := range e.children {
		if el, ok := n.(*Element); ok {
			el.walk(f)
		}
	}
}

// AddChild appends child to e, detaching it from any previous parent.
func (e *Element) AddChild(child *Element) *Element {
	if child.parent != nil {
		child.parent.RemoveChild(child)
	}
	child.parent = e
	e.children = append(e.children, child)
	return child
}

// NewChild creates, appends and returns a new child element.
func (e *Element) NewChild(name Name) *Element {
	return e.AddChild(NewElement(name))
}

// DetachChildren removes every child node from e, clearing the parent link
// of child elements. It is the bulk counterpart of RemoveChild, used to tear
// down transient render trees that temporarily adopt shared elements.
func (e *Element) DetachChildren() {
	for _, n := range e.children {
		if el, ok := n.(*Element); ok {
			el.parent = nil
		}
	}
	e.children = e.children[:0]
}

// RemoveChild removes the first occurrence of child from e's children.
// It reports whether the child was found.
func (e *Element) RemoveChild(child *Element) bool {
	for i, n := range e.children {
		if n == child {
			e.children = append(e.children[:i], e.children[i+1:]...)
			child.parent = nil
			return true
		}
	}
	return false
}

// AddText appends character data to e and returns e.
func (e *Element) AddText(s string) *Element {
	e.children = append(e.children, Text(s))
	return e
}

// SetText replaces all children with a single text node.
func (e *Element) SetText(s string) *Element {
	for _, n := range e.children {
		if el, ok := n.(*Element); ok {
			el.parent = nil
		}
	}
	e.children = e.children[:0]
	if s != "" {
		e.children = append(e.children, Text(s))
	}
	return e
}

// Text returns the concatenation of all direct character-data children.
func (e *Element) Text() string {
	var b strings.Builder
	for _, n := range e.children {
		if t, ok := n.(Text); ok {
			b.WriteString(string(t))
		}
	}
	return b.String()
}

// TrimmedText returns Text with surrounding whitespace removed.
func (e *Element) TrimmedText() string { return strings.TrimSpace(e.Text()) }

// Attr returns the value of the named attribute.
func (e *Element) Attr(name Name) (string, bool) {
	for _, a := range e.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrLocal returns the value of the first attribute whose local name
// matches, regardless of namespace.
func (e *Element) AttrLocal(local string) (string, bool) {
	for _, a := range e.Attrs {
		if a.Name.Local == local {
			return a.Value, true
		}
	}
	return "", false
}

// SetAttr sets (or replaces) an attribute and returns e.
func (e *Element) SetAttr(name Name, value string) *Element {
	for i, a := range e.Attrs {
		if a.Name == name {
			e.Attrs[i].Value = value
			return e
		}
	}
	e.Attrs = append(e.Attrs, Attr{Name: name, Value: value})
	return e
}

// DeclarePrefix binds prefix to the namespace URI in this element's scope.
// An empty prefix declares the default namespace.
func (e *Element) DeclarePrefix(prefix, uri string) *Element {
	if e.nsDecls == nil {
		e.nsDecls = make(map[string]string)
	}
	e.nsDecls[prefix] = uri
	return e
}

// LookupPrefix resolves a prefix to a namespace URI using this element's
// scope and its ancestors. The "xml" prefix is built in.
func (e *Element) LookupPrefix(prefix string) (string, bool) {
	if prefix == "xml" {
		return "http://www.w3.org/XML/1998/namespace", true
	}
	for el := e; el != nil; el = el.parent {
		if uri, ok := el.nsDecls[prefix]; ok {
			return uri, ok
		}
	}
	return "", false
}

// PrefixFor searches the in-scope declarations for a prefix bound to uri.
func (e *Element) PrefixFor(uri string) (string, bool) {
	seen := map[string]bool{}
	for el := e; el != nil; el = el.parent {
		// Iterate deterministically for stable results.
		prefixes := make([]string, 0, len(el.nsDecls))
		for p := range el.nsDecls {
			prefixes = append(prefixes, p)
		}
		sort.Strings(prefixes)
		for _, p := range prefixes {
			if seen[p] {
				continue // shadowed by a nearer declaration
			}
			seen[p] = true
			if el.nsDecls[p] == uri {
				return p, true
			}
		}
	}
	return "", false
}

// ResolveQName resolves a lexical QName ("pfx:local" or "local") appearing
// in content or attribute values, using the element's in-scope namespace
// declarations. An unprefixed QName resolves to the default namespace if one
// is declared, otherwise to no namespace.
func (e *Element) ResolveQName(s string) (Name, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Name{}, fmt.Errorf("xmlutil: empty qname")
	}
	if i := strings.IndexByte(s, ':'); i >= 0 {
		prefix, local := s[:i], s[i+1:]
		if prefix == "" || local == "" {
			return Name{}, fmt.Errorf("xmlutil: malformed qname %q", s)
		}
		uri, ok := e.LookupPrefix(prefix)
		if !ok {
			return Name{}, fmt.Errorf("xmlutil: undeclared prefix %q in qname %q", prefix, s)
		}
		return Name{Space: uri, Local: local}, nil
	}
	if uri, ok := e.LookupPrefix(""); ok {
		return Name{Space: uri, Local: s}, nil
	}
	return Name{Local: s}, nil
}

// Clone returns a deep copy of the element (detached from any parent).
func (e *Element) Clone() *Element {
	c := &Element{Name: e.Name}
	if len(e.Attrs) > 0 {
		c.Attrs = append([]Attr(nil), e.Attrs...)
	}
	if len(e.nsDecls) > 0 {
		c.nsDecls = make(map[string]string, len(e.nsDecls))
		for k, v := range e.nsDecls {
			c.nsDecls[k] = v
		}
	}
	for _, n := range e.children {
		switch n := n.(type) {
		case Text:
			c.children = append(c.children, n)
		case *Element:
			cc := n.Clone()
			cc.parent = c
			c.children = append(c.children, cc)
		}
	}
	return c
}

// Equal reports whether two trees are semantically equal: same names,
// same attributes (order-insensitive), same child sequence, with character
// data compared after trimming surrounding whitespace on mixed content
// boundaries. Prefix choices and namespace declarations are ignored.
func Equal(a, b *Element) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Name != b.Name {
		return false
	}
	if len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for _, attr := range a.Attrs {
		v, ok := b.Attr(attr.Name)
		if !ok || v != attr.Value {
			return false
		}
	}
	ac, bc := significantChildren(a), significantChildren(b)
	if len(ac) != len(bc) {
		return false
	}
	for i := range ac {
		switch an := ac[i].(type) {
		case Text:
			bn, ok := bc[i].(Text)
			if !ok || an != bn {
				return false
			}
		case *Element:
			bn, ok := bc[i].(*Element)
			if !ok || !Equal(an, bn) {
				return false
			}
		}
	}
	return true
}

// significantChildren drops whitespace-only text nodes (indentation).
func significantChildren(e *Element) []Node {
	var out []Node
	for _, n := range e.children {
		if t, ok := n.(Text); ok {
			if strings.TrimSpace(string(t)) == "" {
				continue
			}
		}
		out = append(out, n)
	}
	return out
}

// ---------------------------------------------------------------------------
// Parsing

// Parse reads a complete XML document from r and returns its root element.
// The document is buffered in full; parsing itself is the byte-slice
// parser in parse.go.
func Parse(r io.Reader) (*Element, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("xmlutil: parse: %w", err)
	}
	return ParseBytes(data)
}

// ParseString parses an XML document held in s.
func ParseString(s string) (*Element, error) { return ParseBytes([]byte(s)) }

// ---------------------------------------------------------------------------
// Serialization

// PreferredPrefixes maps namespace URIs to the prefixes a Writer should use
// for them. Well-known SOAP-stack namespaces get conventional prefixes.
var PreferredPrefixes = map[string]string{
	"http://schemas.xmlsoap.org/soap/envelope/":        "soapenv",
	"http://www.w3.org/2003/05/soap-envelope":          "soapenv",
	"http://schemas.xmlsoap.org/wsdl/":                 "wsdl",
	"http://schemas.xmlsoap.org/wsdl/soap/":            "wsdlsoap",
	"http://www.w3.org/2001/XMLSchema":                 "xsd",
	"http://www.w3.org/2001/XMLSchema-instance":        "xsi",
	"http://schemas.xmlsoap.org/ws/2004/08/addressing": "wsa",
}

type writer struct {
	b        bytes.Buffer
	indent   string
	prefixes map[string]string // uri -> prefix, global assignment
	next     int
	scratch  []byte // conversion buffer for the slow escape path
}

// writerPool recycles marshal writers — their byte buffers and prefix maps —
// so steady-state serialization performs no per-call buffer growth or map
// allocation. A writer obtained from the pool MUST be returned with
// putWriter on every path; the returned bytes are always copied out of (or
// flushed from) the pooled buffer before release, so callers never alias
// pooled memory.
var writerPool = sync.Pool{
	New: func() interface{} {
		return &writer{prefixes: make(map[string]string, 8)}
	},
}

// maxPooledWriterCap bounds how much buffer capacity a pooled writer may
// retain. Writers that served an unusually large document are dropped
// instead of pinning their memory in the pool.
const maxPooledWriterCap = 1 << 20

func getWriter(indent string) *writer {
	w := writerPool.Get().(*writer)
	w.indent = indent
	return w
}

func putWriter(w *writer) {
	if w.b.Cap() > maxPooledWriterCap || len(w.prefixes) > 64 {
		return // oversized; let the GC have it
	}
	w.b.Reset()
	clear(w.prefixes)
	w.next = 0
	writerPool.Put(w)
}

// Marshal serializes the tree to a compact byte slice (no XML declaration).
// The returned slice is freshly allocated and never aliases pooled memory.
func Marshal(e *Element) []byte { return marshal(e, "") }

// MarshalIndent serializes the tree with two-space indentation.
func MarshalIndent(e *Element) []byte { return marshal(e, "  ") }

func marshal(e *Element, indent string) []byte {
	w := getWriter(indent)
	w.run(e)
	out := make([]byte, w.b.Len())
	copy(out, w.b.Bytes())
	putWriter(w)
	return out
}

// MarshalTo serializes the tree (compact form) directly to dst, using a
// pooled intermediate buffer: the envelope bytes are written once, with no
// retained copies. It is the zero-garbage counterpart of Marshal for
// callers that stream to a socket or response writer.
func MarshalTo(dst io.Writer, e *Element) error {
	w := getWriter("")
	w.run(e)
	_, err := dst.Write(w.b.Bytes())
	putWriter(w)
	return err
}

func (w *writer) run(e *Element) {
	w.collect(e)
	w.element(e, 0)
	if w.indent != "" {
		w.b.WriteByte('\n')
	}
}

// MarshalDocument serializes with a leading XML declaration.
func MarshalDocument(e *Element) []byte {
	return append([]byte(xml.Header), MarshalIndent(e)...)
}

// collect assigns a prefix to every namespace URI used in the tree.
func (w *writer) collect(e *Element) {
	e.walk(func(el *Element) {
		w.assign(el.Name.Space)
		for _, a := range el.Attrs {
			w.assign(a.Name.Space)
		}
		// Honor explicit declarations so QNames in content keep resolving.
		prefixes := make([]string, 0, len(el.nsDecls))
		for p := range el.nsDecls {
			prefixes = append(prefixes, p)
		}
		sort.Strings(prefixes)
		for _, p := range prefixes {
			uri := el.nsDecls[p]
			if p == "" || uri == "" {
				continue
			}
			if _, ok := w.prefixes[uri]; !ok && !w.prefixUsed(p) {
				w.prefixes[uri] = p
			}
			w.assign(uri) // fallback prefix if the explicit one was taken
		}
	})
}

func (w *writer) assign(uri string) {
	if uri == "" || uri == "http://www.w3.org/XML/1998/namespace" {
		return
	}
	if _, ok := w.prefixes[uri]; ok {
		return
	}
	if p, ok := PreferredPrefixes[uri]; ok && !w.prefixUsed(p) {
		w.prefixes[uri] = p
		return
	}
	for {
		w.next++
		p := fmt.Sprintf("ns%d", w.next)
		if !w.prefixUsed(p) {
			w.prefixes[uri] = p
			return
		}
	}
}

func (w *writer) prefixUsed(p string) bool {
	for _, used := range w.prefixes {
		if used == p {
			return true
		}
	}
	return false
}

// writeName writes the qualified lexical name for n straight into the
// buffer, avoiding the per-element string concatenation a qname() helper
// would cost.
func (w *writer) writeName(n Name) {
	switch {
	case n.Space == "":
	case n.Space == "http://www.w3.org/XML/1998/namespace":
		w.b.WriteString("xml:")
	default:
		w.b.WriteString(w.prefixes[n.Space])
		w.b.WriteByte(':')
	}
	w.b.WriteString(n.Local)
}

// isInsignificantWS reports whether a text node is whitespace-only
// (indentation) and therefore skipped by serialization.
func isInsignificantWS(s string) bool { return strings.TrimSpace(s) == "" }

func (w *writer) element(e *Element, depth int) {
	if w.indent != "" && depth > 0 {
		w.b.WriteByte('\n')
		for i := 0; i < depth; i++ {
			w.b.WriteString(w.indent)
		}
	}
	w.b.WriteByte('<')
	w.writeName(e.Name)
	if depth == 0 {
		// Declare every prefix on the root for a self-contained document.
		uris := make([]string, 0, len(w.prefixes))
		for uri := range w.prefixes {
			uris = append(uris, uri)
		}
		sort.Strings(uris)
		for _, uri := range uris {
			w.b.WriteString(" xmlns:")
			w.b.WriteString(w.prefixes[uri])
			w.b.WriteString(`="`)
			w.escapeAttr(uri)
			w.b.WriteByte('"')
		}
	}
	for _, a := range e.Attrs {
		w.b.WriteByte(' ')
		w.writeName(a.Name)
		w.b.WriteString(`="`)
		w.escapeAttr(a.Value)
		w.b.WriteByte('"')
	}
	// Classify children without materializing the significant-child slice:
	// whitespace-only text nodes (indentation) are not significant.
	hasSig, textOnly := false, true
	for _, n := range e.children {
		switch n := n.(type) {
		case Text:
			if !isInsignificantWS(string(n)) {
				hasSig = true
			}
		case *Element:
			hasSig = true
			textOnly = false
		}
	}
	if !hasSig {
		w.b.WriteString("/>")
		return
	}
	w.b.WriteByte('>')
	for _, n := range e.children {
		switch n := n.(type) {
		case Text:
			if !isInsignificantWS(string(n)) {
				w.escapeText(string(n))
			}
		case *Element:
			w.element(n, depth+1)
		}
	}
	if !textOnly && w.indent != "" {
		w.b.WriteByte('\n')
		for i := 0; i < depth; i++ {
			w.b.WriteString(w.indent)
		}
	}
	w.b.WriteString("</")
	w.writeName(e.Name)
	w.b.WriteByte('>')
}

// plainTextByte reports whether byte c can be emitted in character data
// verbatim: printable ASCII with no markup significance. Anything else
// (escapable characters, control bytes, multi-byte runes) takes the slow
// path through encoding/xml's escaper so output stays byte-identical with
// the standard library's rules.
func plainTextByte(c byte) bool {
	return c >= 0x20 && c < 0x80 && c != '&' && c != '<' && c != '>' && c != '"' && c != '\''
}

// escapeText writes character data into the buffer, escaping exactly as
// encoding/xml.EscapeText does. The common all-plain-ASCII case is written
// directly with no allocation.
func (w *writer) escapeText(s string) {
	plain := true
	for i := 0; i < len(s); i++ {
		if !plainTextByte(s[i]) {
			plain = false
			break
		}
	}
	if plain {
		w.b.WriteString(s)
		return
	}
	w.scratch = append(w.scratch[:0], s...)
	if err := xml.EscapeText(&w.b, w.scratch); err != nil {
		w.b.WriteString(s)
	}
}

// escapeAttr writes an attribute value, escaping &, <, > and the quote
// character (the historical output format of this package). The common
// clean case is written directly with no allocation.
func (w *writer) escapeAttr(s string) {
	start := 0
	for i := 0; i < len(s); i++ {
		var repl string
		switch s[i] {
		case '&':
			repl = "&amp;"
		case '<':
			repl = "&lt;"
		case '>':
			repl = "&gt;"
		case '"':
			repl = "&quot;"
		default:
			continue
		}
		w.b.WriteString(s[start:i])
		w.b.WriteString(repl)
		start = i + 1
	}
	w.b.WriteString(s[start:])
}

// QNameValue renders name as a lexical QName for use in content, declaring
// the needed prefix on scope if it is not already in scope. It returns the
// lexical form ("pfx:local").
func QNameValue(scope *Element, name Name) string {
	if name.Space == "" {
		return name.Local
	}
	if p, ok := scope.PrefixFor(name.Space); ok && p != "" {
		return p + ":" + name.Local
	}
	p := PreferredPrefixes[name.Space]
	if p == "" {
		p = "q" + fmt.Sprintf("%d", len(scope.nsDecls)+1)
	}
	for {
		if _, taken := scope.LookupPrefix(p); !taken {
			break
		}
		p += "x"
	}
	scope.DeclarePrefix(p, name.Space)
	return p + ":" + name.Local
}
