package xmlutil

import (
	"strings"
	"testing"
	"testing/quick"
)

const nsA = "http://example.org/a"
const nsB = "http://example.org/b"

func TestBuildAndQuery(t *testing.T) {
	root := NewElement(N(nsA, "root"))
	c1 := root.NewChild(N(nsA, "child")).SetText("one")
	c2 := root.NewChild(N(nsB, "child"))
	c2.SetText("two")
	root.NewChild(N(nsA, "other"))

	if got := root.Child(N(nsA, "child")); got != c1 {
		t.Fatalf("Child(a:child) = %v, want c1", got)
	}
	if got := root.Child(N(nsB, "child")); got != c2 {
		t.Fatalf("Child(b:child) = %v, want c2", got)
	}
	if got := len(root.Children(N(nsA, "child"))); got != 1 {
		t.Fatalf("Children(a:child) len = %d, want 1", got)
	}
	if got := root.ChildLocal("child"); got != c1 {
		t.Fatalf("ChildLocal(child) should return first match in document order")
	}
	if got := c1.Text(); got != "one" {
		t.Fatalf("Text = %q, want one", got)
	}
	if c1.Parent() != root {
		t.Fatal("parent not set")
	}
	if got := len(root.Elements()); got != 3 {
		t.Fatalf("Elements len = %d, want 3", got)
	}
}

func TestAttrs(t *testing.T) {
	e := NewElement(N("", "e"))
	e.SetAttr(N("", "a"), "1")
	e.SetAttr(N(nsA, "a"), "2")
	e.SetAttr(N("", "a"), "3") // replace

	if v, ok := e.Attr(N("", "a")); !ok || v != "3" {
		t.Fatalf("Attr(a) = %q,%v want 3,true", v, ok)
	}
	if v, ok := e.Attr(N(nsA, "a")); !ok || v != "2" {
		t.Fatalf("Attr({a}a) = %q,%v want 2,true", v, ok)
	}
	if _, ok := e.Attr(N(nsB, "a")); ok {
		t.Fatal("Attr on missing namespace should miss")
	}
	if v, _ := e.AttrLocal("a"); v != "3" {
		t.Fatalf("AttrLocal(a) = %q, want first declared", v)
	}
	if len(e.Attrs) != 2 {
		t.Fatalf("attr count = %d, want 2", len(e.Attrs))
	}
}

func TestRemoveChildAndReparent(t *testing.T) {
	a := NewElement(N("", "a"))
	b := NewElement(N("", "b"))
	kid := a.NewChild(N("", "kid"))
	if !a.RemoveChild(kid) {
		t.Fatal("RemoveChild failed")
	}
	if kid.Parent() != nil || len(a.Elements()) != 0 {
		t.Fatal("detach incomplete")
	}
	// AddChild must detach from previous parent automatically.
	a.AddChild(kid)
	b.AddChild(kid)
	if len(a.Elements()) != 0 || kid.Parent() != b {
		t.Fatal("reparenting did not detach from old parent")
	}
	if a.RemoveChild(kid) {
		t.Fatal("RemoveChild of non-child should report false")
	}
}

func TestParseRoundTrip(t *testing.T) {
	doc := `<a:root xmlns:a="http://example.org/a" xmlns:b="http://example.org/b">
	  <a:item id="1">hello &amp; goodbye</a:item>
	  <b:item>two</b:item>
	</a:root>`
	root, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if root.Name != N(nsA, "root") {
		t.Fatalf("root name = %v", root.Name)
	}
	item := root.Child(N(nsA, "item"))
	if item == nil {
		t.Fatal("missing a:item")
	}
	if got := item.Text(); got != "hello & goodbye" {
		t.Fatalf("entity decode: %q", got)
	}
	if v, _ := item.Attr(N("", "id")); v != "1" {
		t.Fatalf("id attr = %q", v)
	}

	// Serialize and reparse; trees must be semantically equal.
	out := Marshal(root)
	back, err := ParseBytes(out)
	if err != nil {
		t.Fatalf("reparse %s: %v", out, err)
	}
	if !Equal(root, back) {
		t.Fatalf("round trip not equal:\n%s\nvs\n%s", Marshal(root), Marshal(back))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"<a>",
		"<a></b>",
		"<a/><b/>",
		"not xml at all <",
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("ParseString(%q): expected error", c)
		}
	}
}

func TestDefaultNamespace(t *testing.T) {
	doc := `<root xmlns="http://example.org/a"><kid/></root>`
	root, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if root.Name.Space != nsA {
		t.Fatalf("default ns not applied: %v", root.Name)
	}
	if root.Child(N(nsA, "kid")) == nil {
		t.Fatal("kid should inherit default namespace")
	}
}

func TestResolveQName(t *testing.T) {
	doc := `<r xmlns:p="http://example.org/a" xmlns="http://example.org/b">
	  <inner xmlns:p="http://example.org/b"/>
	</r>`
	root, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	n, err := root.ResolveQName("p:thing")
	if err != nil || n != N(nsA, "thing") {
		t.Fatalf("p:thing = %v, %v", n, err)
	}
	// Unprefixed resolves against default namespace.
	n, err = root.ResolveQName("plain")
	if err != nil || n != N(nsB, "plain") {
		t.Fatalf("plain = %v, %v", n, err)
	}
	// Inner scope shadows p.
	inner := root.ChildLocal("inner")
	n, err = inner.ResolveQName("p:thing")
	if err != nil || n != N(nsB, "thing") {
		t.Fatalf("shadowed p:thing = %v, %v", n, err)
	}
	if _, err := root.ResolveQName("nope:thing"); err == nil {
		t.Fatal("undeclared prefix must error")
	}
	if _, err := root.ResolveQName(""); err == nil {
		t.Fatal("empty qname must error")
	}
	if _, err := root.ResolveQName(":x"); err == nil {
		t.Fatal("malformed qname must error")
	}
}

func TestResolveQNameXMLBuiltin(t *testing.T) {
	e := NewElement(N("", "e"))
	n, err := e.ResolveQName("xml:lang")
	if err != nil || n.Space != "http://www.w3.org/XML/1998/namespace" {
		t.Fatalf("xml builtin: %v %v", n, err)
	}
}

func TestQNameValue(t *testing.T) {
	scope := NewElement(N(nsA, "root"))
	scope.DeclarePrefix("tns", nsA)
	if got := QNameValue(scope, N(nsA, "Echo")); got != "tns:Echo" {
		t.Fatalf("QNameValue existing prefix = %q", got)
	}
	v := QNameValue(scope, N(nsB, "Other"))
	if !strings.HasSuffix(v, ":Other") {
		t.Fatalf("QNameValue new = %q", v)
	}
	// The declared prefix must resolve back.
	n, err := scope.ResolveQName(v)
	if err != nil || n != N(nsB, "Other") {
		t.Fatalf("resolve back = %v, %v", n, err)
	}
	if got := QNameValue(scope, N("", "bare")); got != "bare" {
		t.Fatalf("unqualified = %q", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	root := NewElement(N(nsA, "r"))
	root.SetAttr(N("", "x"), "1")
	root.DeclarePrefix("a", nsA)
	kid := root.NewChild(N(nsA, "kid")).SetText("v")
	c := root.Clone()
	if !Equal(root, c) {
		t.Fatal("clone not equal")
	}
	kid.SetText("changed")
	root.SetAttr(N("", "x"), "2")
	if c.ChildLocal("kid").Text() != "v" {
		t.Fatal("clone shares child text")
	}
	if v, _ := c.Attr(N("", "x")); v != "1" {
		t.Fatal("clone shares attrs")
	}
	if c.ChildLocal("kid").Parent() != c {
		t.Fatal("clone parent pointers wrong")
	}
	if uri, ok := c.LookupPrefix("a"); !ok || uri != nsA {
		t.Fatal("clone lost nsDecls")
	}
}

func TestEqualDifferences(t *testing.T) {
	base := func() *Element {
		e := NewElement(N(nsA, "r"))
		e.SetAttr(N("", "k"), "v")
		e.NewChild(N(nsA, "c")).SetText("t")
		return e
	}
	if !Equal(base(), base()) {
		t.Fatal("identical trees must be equal")
	}
	b := base()
	b.Name.Local = "other"
	if Equal(base(), b) {
		t.Fatal("name diff")
	}
	b = base()
	b.SetAttr(N("", "k"), "w")
	if Equal(base(), b) {
		t.Fatal("attr diff")
	}
	b = base()
	b.ChildLocal("c").SetText("u")
	if Equal(base(), b) {
		t.Fatal("text diff")
	}
	b = base()
	b.NewChild(N(nsA, "extra"))
	if Equal(base(), b) {
		t.Fatal("extra child")
	}
	if !Equal(nil, nil) || Equal(base(), nil) {
		t.Fatal("nil handling")
	}
}

func TestEqualIgnoresWhitespaceNodes(t *testing.T) {
	a, _ := ParseString("<r><c>x</c></r>")
	b, _ := ParseString("<r>\n  <c>x</c>\n</r>")
	if !Equal(a, b) {
		t.Fatal("indentation must not affect equality")
	}
}

func TestMarshalEscaping(t *testing.T) {
	e := NewElement(N("", "e"))
	e.SetAttr(N("", "a"), `<&">`)
	e.SetText(`a < b & c > d`)
	out := string(Marshal(e))
	if strings.ContainsAny(strings.ReplaceAll(out, "&amp;", ""), "&") == false {
		// expected: escapes present
	}
	back, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse escaped: %v\n%s", err, out)
	}
	if back.Text() != `a < b & c > d` {
		t.Fatalf("text round trip: %q", back.Text())
	}
	if v, _ := back.Attr(N("", "a")); v != `<&">` {
		t.Fatalf("attr round trip: %q", v)
	}
}

func TestMarshalPrefixConflict(t *testing.T) {
	// Two explicit declarations of the same prefix for different URIs.
	root := NewElement(N(nsA, "r"))
	root.DeclarePrefix("p", nsA)
	inner := root.NewChild(N(nsB, "i"))
	inner.DeclarePrefix("p", nsB)
	out := Marshal(root)
	back, err := ParseBytes(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if !Equal(root, back) {
		t.Fatalf("conflicting prefixes broke round trip:\n%s", out)
	}
}

func TestMarshalIndentStable(t *testing.T) {
	root := NewElement(N(nsA, "r"))
	root.NewChild(N(nsA, "c")).SetText("1")
	root.NewChild(N(nsB, "d"))
	a := string(MarshalIndent(root))
	b := string(MarshalIndent(root))
	if a != b {
		t.Fatal("marshal must be deterministic")
	}
	if !strings.Contains(a, "\n") {
		t.Fatal("indent output should be multiline")
	}
	back, err := ParseString(a)
	if err != nil || !Equal(root, back) {
		t.Fatalf("indented round trip failed: %v", err)
	}
}

func TestMarshalDocumentHeader(t *testing.T) {
	e := NewElement(N("", "doc"))
	out := string(MarshalDocument(e))
	if !strings.HasPrefix(out, "<?xml") {
		t.Fatalf("missing xml decl: %s", out)
	}
}

func TestFindAndFindAll(t *testing.T) {
	root, _ := ParseString(`<r xmlns="` + nsA + `"><a><b/><b/></a><b/></r>`)
	if got := len(root.FindAll(N(nsA, "b"))); got != 3 {
		t.Fatalf("FindAll = %d, want 3", got)
	}
	if root.Find(N(nsA, "b")) == nil {
		t.Fatal("Find missed")
	}
	if root.Find(N(nsB, "zz")) != nil {
		t.Fatal("Find false positive")
	}
}

// Property: any tree built from sanitized random strings survives
// marshal/parse round-tripping.
func TestQuickRoundTrip(t *testing.T) {
	sanitize := func(s string) string {
		var b strings.Builder
		for _, r := range s {
			if r == '\r' {
				continue // XML parsers normalize \r\n; avoid asymmetry
			}
			if r >= 0x20 || r == '\t' || r == '\n' {
				b.WriteRune(r)
			}
		}
		return b.String()
	}
	ident := func(s string) string {
		var b strings.Builder
		for _, r := range s {
			if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9' && b.Len() > 0) {
				b.WriteRune(r)
			}
		}
		if b.Len() == 0 {
			return "x"
		}
		return b.String()
	}
	f := func(name, text, attrVal, kidName string) bool {
		root := NewElement(N(nsA, ident(name)))
		root.SetAttr(N("", "a"), sanitize(attrVal))
		root.NewChild(N(nsB, ident(kidName))).SetText(sanitize(text))
		out := Marshal(root)
		back, err := ParseBytes(out)
		if err != nil {
			t.Logf("parse error on %s: %v", out, err)
			return false
		}
		return Equal(root, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNameString(t *testing.T) {
	if N("", "x").String() != "x" {
		t.Fatal("bare name")
	}
	if N(nsA, "x").String() != "{http://example.org/a}x" {
		t.Fatal("clark notation")
	}
	if !(Name{}).IsZero() || N("", "x").IsZero() {
		t.Fatal("IsZero")
	}
}
