package xmlutil

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestMarshalPooledBufferNotAliased pins the pooling contract: Marshal
// copies out of the pooled writer, so bytes returned earlier must never
// be overwritten by later marshals reusing the same buffer.
func TestMarshalPooledBufferNotAliased(t *testing.T) {
	mk := func(i int) *Element {
		el := NewElement(N("urn:t", fmt.Sprintf("el%d", i)))
		el.NewChild(N("urn:t", "v")).SetText(fmt.Sprintf("value-%d", i))
		return el
	}
	const n = 64
	outs := make([][]byte, n)
	wants := make([]string, n)
	for i := 0; i < n; i++ {
		outs[i] = Marshal(mk(i))
		wants[i] = string(outs[i]) // snapshot before further pool reuse
	}
	for i := 0; i < n; i++ {
		if string(outs[i]) != wants[i] {
			t.Fatalf("marshal %d was clobbered by pooled-buffer reuse:\n%s", i, outs[i])
		}
	}
}

// TestMarshalConcurrent exercises the writer pool under the race
// detector: concurrent marshals of distinct trees must not interleave.
func TestMarshalConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			el := NewElement(N("urn:t", "root"))
			el.NewChild(N("urn:t", "g")).SetText(fmt.Sprintf("goroutine-%d", g))
			want := string(Marshal(el))
			for i := 0; i < 200; i++ {
				if got := string(Marshal(el)); got != want {
					t.Errorf("goroutine %d: output changed:\n%s", g, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestMarshalToMatchesMarshal pins that the streaming form produces the
// exact bytes of the allocating form.
func TestMarshalToMatchesMarshal(t *testing.T) {
	el := NewElement(N("urn:t", "root"))
	el.DeclarePrefix("p", "urn:p")
	el.NewChild(N("urn:p", "a")).SetText("x & y")
	el.NewChild(N("urn:t", "b")).SetAttr(N("", "q"), `"quoted"`)
	want := Marshal(el)
	var buf bytes.Buffer
	if err := MarshalTo(&buf, el); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("MarshalTo differs:\n%s\nvs\n%s", buf.Bytes(), want)
	}
}

// TestParseConcurrent exercises the parser pool under the race detector.
func TestParseConcurrent(t *testing.T) {
	doc := []byte(`<a xmlns="urn:d"><b attr="v">text &amp; more</b><c/></a>`)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				el, err := ParseBytes(doc)
				if err != nil {
					t.Error(err)
					return
				}
				if el.ChildLocal("b").Text() != "text & more" {
					t.Error("bad parse")
					return
				}
			}
		}()
	}
	wg.Wait()
}
