package xmlutil

import (
	"strings"
	"testing"
)

func TestParseEntitiesAndCharRefs(t *testing.T) {
	el, err := ParseString(`<a x="1 &amp; 2">&lt;b&gt; &apos;c&apos; &quot;d&quot; &#65;&#x42;</a>`)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := el.Attr(N("", "x")); got != "1 & 2" {
		t.Errorf("attr = %q", got)
	}
	if got := el.Text(); got != `<b> 'c' "d" AB` {
		t.Errorf("text = %q", got)
	}
}

func TestParseCDATAAndComments(t *testing.T) {
	el, err := ParseString(`<?xml version="1.0"?><!-- head --><a><!-- in --><![CDATA[<raw & unescaped>]]></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := el.Text(); got != "<raw & unescaped>" {
		t.Errorf("text = %q", got)
	}
}

func TestParseDoctypeSkipped(t *testing.T) {
	el, err := ParseString(`<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> ]><a>hi</a>`)
	if err != nil {
		t.Fatal(err)
	}
	if el.Name.Local != "a" || el.Text() != "hi" {
		t.Errorf("got %s %q", el.Name, el.Text())
	}
}

func TestParseNamespaceScoping(t *testing.T) {
	el, err := ParseString(`<a xmlns="urn:d" xmlns:p="urn:p"><p:b q:r="v" xmlns:q="urn:q" plain="w"/><c/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if el.Name != N("urn:d", "a") {
		t.Errorf("root = %s", el.Name)
	}
	b := el.ChildLocal("b")
	if b.Name != N("urn:p", "b") {
		t.Errorf("b = %s", b.Name)
	}
	// Prefixed attributes resolve through decls on the same element;
	// unprefixed attributes never take the default namespace.
	if v, ok := b.Attr(N("urn:q", "r")); !ok || v != "v" {
		t.Errorf("q:r = %q, %v", v, ok)
	}
	if v, ok := b.Attr(N("", "plain")); !ok || v != "w" {
		t.Errorf("plain = %q, %v", v, ok)
	}
	if c := el.ChildLocal("c"); c.Name != N("urn:d", "c") {
		t.Errorf("c = %s (default namespace should apply)", c.Name)
	}
}

func TestParseCarriageReturnNormalized(t *testing.T) {
	el, err := ParseString("<a>x\r\ny\rz</a>")
	if err != nil {
		t.Fatal(err)
	}
	if got := el.Text(); got != "x\ny\nz" {
		t.Errorf("text = %q", got)
	}
}

func TestParseMalformed(t *testing.T) {
	cases := []string{
		"plain text",
		"<p:a></q:a>",
		"<a><b></a></b>",
		"<a/><b/>",
		"<a attr></a>",
		`<a x="unterminated></a>`,
		"<a>&bogus;</a>",
		"<a>&#xZZ;</a>",
		"<a>& loose</a>",
		"<!-- only a comment -->",
		"<a><![CDATA[unterminated</a>",
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q): expected error", src)
		}
	}
}

func TestParseUndeclaredPrefixKeptVerbatim(t *testing.T) {
	// encoding/xml resolved unknown prefixes to the prefix itself; the
	// replacement parser preserves that so lenient peers interoperate.
	el, err := ParseString(`<u:a xmlns:u="urn:u"><w:b>x</w:b></u:a>`)
	if err != nil {
		t.Fatal(err)
	}
	if b := el.ChildLocal("b"); b.Name.Space != "w" {
		t.Errorf("undeclared prefix resolved to %q, want \"w\"", b.Name.Space)
	}
}

// TestParseMarshalRoundTripDeep pushes a deep, attribute-heavy tree
// through marshal+parse and requires semantic equality.
func TestParseMarshalRoundTripDeep(t *testing.T) {
	root := NewElement(N("urn:root", "root"))
	cur := root
	for i := 0; i < 40; i++ {
		cur = cur.NewChild(N("urn:root", "nest"))
		cur.SetAttr(N("", "depth"), strings.Repeat("d", i%7))
		cur.AddText("text & <markup> 'quoted'")
	}
	out := Marshal(root)
	back, err := ParseBytes(out)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(root, back) {
		t.Fatal("round trip not equal")
	}
	if string(Marshal(back)) != string(out) {
		t.Fatal("re-marshal differs")
	}
}
