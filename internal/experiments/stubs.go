package experiments

import (
	"fmt"
	"time"

	"wspeer/internal/engine"
	"wspeer/internal/soap"
	"wspeer/internal/wsdl"
	"wspeer/internal/xmlutil"
)

// StubResult compares three client-side request-construction strategies
// (E8). The paper: "WSPeer actually extends the stub generation
// capabilities of Axis by generating stubs directly to bytes, bypassing
// source generation and compilation."
//
//   - dynamic: WSPeer's approach — a Stub over pre-parsed WSDL serializes
//     each call straight to envelope bytes;
//   - static: what generated-and-compiled code would do — a hand-written
//     function building the same envelope with no WSDL in the loop (the
//     lower bound);
//   - reparse: the naive baseline that re-parses the WSDL on every call.
type StubResult struct {
	Iterations int
	Dynamic    time.Duration // per call
	Static     time.Duration // per call
	Reparse    time.Duration // per call
}

// echoDefsBytes builds and serializes the Echo WSDL once.
func echoDefsBytes() ([]byte, *wsdl.Definitions, error) {
	e := engine.New()
	svc, err := e.Deploy(engine.ServiceDef{
		Name: "Echo",
		Operations: []engine.OperationDef{{
			Name:       "echo",
			Func:       func(s string) string { return s },
			ParamNames: []string{"msg"},
		}},
	})
	if err != nil {
		return nil, nil, err
	}
	defs, err := svc.WSDL(wsdl.TransportHTTP, "http://host/Echo")
	if err != nil {
		return nil, nil, err
	}
	raw, err := defs.Marshal()
	return raw, defs, err
}

// staticEchoRequest is the "compiled stub" baseline: everything the WSDL
// would have told us is hard-coded.
func staticEchoRequest(msg string) []byte {
	const ns = "http://wspeer.dev/services/Echo"
	env := soap.NewEnvelope()
	wrapper := xmlutil.NewElement(xmlutil.N(ns, "echo"))
	wrapper.NewChild(xmlutil.N(ns, "msg")).SetText(msg)
	env.AddBodyElement(wrapper)
	return env.Marshal()
}

// RunStubComparison measures E8.
func RunStubComparison(iterations int) (*StubResult, error) {
	raw, defs, err := echoDefsBytes()
	if err != nil {
		return nil, err
	}
	res := &StubResult{Iterations: iterations}

	// Dynamic: parse once, serialize straight to bytes per call.
	stub := engine.NewStub(defs, nil)
	start := time.Now()
	for i := 0; i < iterations; i++ {
		if _, _, err := stub.BuildRequest("echo", engine.P("msg", "hello")); err != nil {
			return nil, err
		}
	}
	res.Dynamic = time.Since(start) / time.Duration(iterations)

	// Static: hand-written envelope construction.
	start = time.Now()
	for i := 0; i < iterations; i++ {
		_ = staticEchoRequest("hello")
	}
	res.Static = time.Since(start) / time.Duration(iterations)

	// Naive: re-parse the WSDL every call.
	start = time.Now()
	for i := 0; i < iterations; i++ {
		d, err := wsdl.Parse(raw)
		if err != nil {
			return nil, err
		}
		s := engine.NewStub(d, nil)
		if _, _, err := s.BuildRequest("echo", engine.P("msg", "hello")); err != nil {
			return nil, err
		}
	}
	res.Reparse = time.Since(start) / time.Duration(iterations)
	return res, nil
}

// StubTable renders E8.
func StubTable(r *StubResult) *Table {
	return &Table{
		ID:      "E8",
		Title:   "client stub strategies: dynamic bytes vs compiled-equivalent vs per-call WSDL reparse",
		Columns: []string{"strategy", "per call", "vs static"},
		Rows: [][]string{
			{"static (compiled-stub equivalent)", r.Static.String(), "1.00x"},
			{"dynamic stub, straight to bytes", r.Dynamic.String(), f64(float64(r.Dynamic)/float64(r.Static)) + "x"},
			{"naive per-call WSDL reparse", r.Reparse.String(), f64(float64(r.Reparse)/float64(r.Static)) + "x"},
		},
		Notes: []string{
			fmt.Sprintf("%d iterations per strategy", r.Iterations),
			"shape check: dynamic stays within a small factor of static; reparse is an order of magnitude worse",
		},
	}
}
