package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"wspeer"
	"wspeer/internal/engine"
	"wspeer/internal/soap"
	"wspeer/internal/telemetry"
	"wspeer/internal/wsdl"
	"wspeer/internal/xmlutil"
)

// The allocation benchmarks pin the invocation fast path (DESIGN.md §9):
// cached operation plans, compiled XSD codecs and pooled XML writers are
// only worth their complexity if allocs/op stays down, so the harness
// measures them the same way `go test -bench -benchmem` does — via
// testing.Benchmark — and emits machine-readable results a later run can
// be compared against.

// AllocBenchResult is one benchmark measurement, JSON-stable so baseline
// files survive across runs.
type AllocBenchResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func toResult(name string, r testing.BenchmarkResult) AllocBenchResult {
	return AllocBenchResult{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

func allocEchoDef() wspeer.ServiceDef {
	return wspeer.ServiceDef{
		Name: "Echo",
		Operations: []wspeer.OperationDef{{
			Name:       "echo",
			Func:       func(s string) string { return s },
			ParamNames: []string{"msg"},
		}},
	}
}

// RunAllocBenches measures the fast-path benchmarks in-process. Each
// closure mirrors the corresponding testing.B benchmark in bench_test.go.
func RunAllocBenches() ([]AllocBenchResult, error) {
	var out []AllocBenchResult
	var setupErr error

	// HTTPInvoke: steady-state invocation over real HTTP.
	{
		peer := wspeer.NewPeer()
		binding, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{})
		if err != nil {
			return nil, err
		}
		binding.Attach(peer)
		dep, err := peer.Server().Deploy(allocEchoDef())
		if err != nil {
			binding.Close()
			return nil, err
		}
		inv, err := peer.Client().NewInvocation(&wspeer.ServiceInfo{
			Name: "Echo", Endpoint: dep.Endpoint, Definitions: dep.Definitions,
		})
		if err != nil {
			binding.Close()
			return nil, err
		}
		ctx := context.Background()
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := inv.Invoke(ctx, "echo", wspeer.P("msg", "x")); err != nil {
					setupErr = err
					b.FailNow()
				}
			}
		})
		binding.Close()
		if setupErr != nil {
			return nil, setupErr
		}
		out = append(out, toResult("HTTPInvoke", r))
	}

	// EngineDispatch: parse + dispatch + encode, no transport.
	eng := engine.New()
	svc, err := eng.Deploy(engine.ServiceDef{
		Name: "Echo",
		Operations: []engine.OperationDef{{
			Name: "echo", Func: func(s string) string { return s }, ParamNames: []string{"msg"},
		}},
	})
	if err != nil {
		return nil, err
	}
	defs, err := svc.WSDL(wsdl.TransportHTTP, "http://h/Echo")
	if err != nil {
		return nil, err
	}
	stub := engine.NewStub(defs, nil)
	req, _, err := stub.BuildRequest("echo", engine.P("msg", "hello"))
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			resp, err := eng.ServeRequest(ctx, "Echo", req)
			if err != nil || resp.Faulted {
				setupErr = fmt.Errorf("dispatch failed: %v", err)
				b.FailNow()
			}
		}
	})
	if setupErr != nil {
		return nil, setupErr
	}
	out = append(out, toResult("EngineDispatch", r))

	// StubGeneration: dynamic request construction straight to bytes.
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := stub.BuildRequest("echo", engine.P("msg", "hello")); err != nil {
				setupErr = err
				b.FailNow()
			}
		}
	})
	if setupErr != nil {
		return nil, setupErr
	}
	out = append(out, toResult("StubGeneration", r))

	// EnvelopeMarshal: envelope rendering through the pooled XML writer.
	env := soap.NewEnvelope()
	body := xmlutil.NewElement(xmlutil.N("urn:bench", "echo"))
	body.NewChild(xmlutil.N("urn:bench", "msg")).SetText("hello world")
	env.AddBodyElement(body)
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(env.Marshal()) == 0 {
				setupErr = fmt.Errorf("empty envelope")
				b.FailNow()
			}
		}
	})
	if setupErr != nil {
		return nil, setupErr
	}
	out = append(out, toResult("EnvelopeMarshal", r))

	return out, nil
}

// AllocBenchTable renders the fast-path allocation measurements.
func AllocBenchTable(rs []AllocBenchResult) *Table {
	t := &Table{
		ID:      "A3",
		Title:   "invocation fast path: time and allocations per operation",
		Columns: []string{"benchmark", "ns/op", "B/op", "allocs/op"},
		Notes: []string{
			"measured in-process via testing.Benchmark, equivalent to `go test -bench -benchmem`",
		},
	}
	for _, r := range rs {
		t.Rows = append(t.Rows, []string{
			r.Name,
			fmt.Sprintf("%.0f", r.NsPerOp),
			fmt.Sprintf("%d", r.BytesPerOp),
			fmt.Sprintf("%d", r.AllocsPerOp),
		})
	}
	return t
}

// AllocBenchFile is the on-disk form of a benchmark result file: the
// measurements plus the telemetry spine's view of the same run — per-
// service call counts and latency quantiles straight from the always-on
// call table, cross-checking what testing.Benchmark measured from the
// outside.
type AllocBenchFile struct {
	Benchmarks []AllocBenchResult   `json:"benchmarks"`
	Throughput []ThroughputResult   `json:"throughput,omitempty"`
	Telemetry  *AllocBenchTelemetry `json:"telemetry,omitempty"`
}

// AllocBenchTelemetry is the spine snapshot embedded in a result file.
type AllocBenchTelemetry struct {
	// Calls carries per-(service, direction) counts and latency figures
	// (p50/p99 come from the call table's histogram buckets).
	Calls []telemetry.CallSnapshot `json:"calls"`
	// Counters is the hub's counter set at collection time.
	Counters map[string]int64 `json:"counters"`
}

// CollectBenchTelemetry captures the default hub after a bench run.
func CollectBenchTelemetry() *AllocBenchTelemetry {
	snap := telemetry.Default().Snapshot()
	return &AllocBenchTelemetry{Calls: snap.Calls, Counters: snap.Counters}
}

// WriteAllocBenchJSON saves results as a baseline/trajectory file in the
// wrapper form (benchmarks + throughput + telemetry). thr and tel may be
// nil — older baselines without throughput figures stay comparable.
func WriteAllocBenchJSON(path string, rs []AllocBenchResult, thr []ThroughputResult, tel *AllocBenchTelemetry) error {
	data, err := json.MarshalIndent(AllocBenchFile{Benchmarks: rs, Throughput: thr, Telemetry: tel}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadAllocBenchJSON loads a previously saved baseline. Both file forms
// are accepted: the original bare array of results and the current
// wrapper object carrying a telemetry snapshot alongside them.
func ReadAllocBenchJSON(path string) ([]AllocBenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var rs []AllocBenchResult
		if err := json.Unmarshal(data, &rs); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return rs, nil
	}
	var f AllocBenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f.Benchmarks, nil
}

// CompareAllocBenches checks current results against a baseline and
// returns one error per regression beyond tolerance (a fraction, e.g.
// 0.20 for 20%) in either ns/op or allocs/op. Benchmarks present in only
// one of the two sets are ignored: the comparison gates regressions, not
// coverage.
func CompareAllocBenches(baseline, current []AllocBenchResult, tolerance float64) []error {
	base := make(map[string]AllocBenchResult, len(baseline))
	for _, r := range baseline {
		base[r.Name] = r
	}
	var errs []error
	for _, cur := range current {
		b, ok := base[cur.Name]
		if !ok {
			continue
		}
		if b.NsPerOp > 0 && cur.NsPerOp > b.NsPerOp*(1+tolerance) {
			errs = append(errs, fmt.Errorf("%s: ns/op regressed %.0f -> %.0f (more than %.0f%%)",
				cur.Name, b.NsPerOp, cur.NsPerOp, tolerance*100))
		}
		if b.AllocsPerOp > 0 && float64(cur.AllocsPerOp) > float64(b.AllocsPerOp)*(1+tolerance) {
			errs = append(errs, fmt.Errorf("%s: allocs/op regressed %d -> %d (more than %.0f%%)",
				cur.Name, b.AllocsPerOp, cur.AllocsPerOp, tolerance*100))
		}
	}
	return errs
}
