package experiments

import (
	"context"
	"fmt"
	"time"

	"wspeer/internal/engine"
	"wspeer/internal/netsim"
	"wspeer/internal/p2ps"
	"wspeer/internal/wsdl"
)

// TTLRow is one A1 measurement: query reach on a rendezvous chain as a
// function of the query's TTL.
type TTLRow struct {
	TTL      int
	Chain    int
	Success  bool
	Messages int64
	Hops     float64
}

// RunTTLSweep measures A1: a chain of rendezvous with the provider's home
// at the far end. A query entering at the near end needs TTL ≥ chain-1 to
// reach the advert; every extra TTL hop also costs messages. This is the
// knob the paper's rendezvous design trades between reach and traffic.
func RunTTLSweep(seed int64, chain int, ttls []int) ([]TTLRow, error) {
	var rows []TTLRow
	for _, ttl := range ttls {
		sim := netsim.New(seed)
		sim.SetDefaultLink(netsim.Link{Latency: 5 * time.Millisecond})

		// Build the chain: rendezvous i seeded only with rendezvous i-1.
		rdvs := make([]*p2ps.Peer, chain)
		for i := range rdvs {
			ep, err := sim.NewEndpoint(fmt.Sprintf("rdv-%02d", i))
			if err != nil {
				return nil, err
			}
			var seeds []string
			if i > 0 {
				seeds = []string{rdvs[i-1].Addr()}
			}
			peer, err := p2ps.NewPeer(p2ps.Config{
				Rendezvous: true, Transport: ep, Clock: sim,
				QueryTTL: ttl, Seeds: seeds,
			})
			if err != nil {
				return nil, err
			}
			rdvs[i] = peer
			sim.Run(0)
		}
		provEP, err := sim.NewEndpoint("provider")
		if err != nil {
			return nil, err
		}
		provider, err := p2ps.NewPeer(p2ps.Config{
			Transport: provEP, Clock: sim, QueryTTL: ttl,
			Seeds: []string{rdvs[chain-1].Addr()},
		})
		if err != nil {
			return nil, err
		}
		consEP, err := sim.NewEndpoint("consumer")
		if err != nil {
			return nil, err
		}
		consumer, err := p2ps.NewPeer(p2ps.Config{
			Transport: consEP, Clock: sim, QueryTTL: ttl,
			Seeds: []string{rdvs[0].Addr()},
		})
		if err != nil {
			return nil, err
		}
		sim.Run(0)
		if _, err := provider.PublishService(&p2ps.ServiceAdvertisement{Name: "Far"}); err != nil {
			return nil, err
		}
		sim.Run(0)

		before := sim.Stats()
		d := consumer.Discover(p2ps.Query{Name: "Far"}, 5*time.Second)
		sim.Run(0)
		after := sim.Stats()
		rows = append(rows, TTLRow{
			TTL:      ttl,
			Chain:    chain,
			Success:  len(d.Matches()) > 0,
			Messages: after.Sent - before.Sent,
			Hops:     d.MeanHops(),
		})
	}
	return rows, nil
}

// TTLTable renders A1.
func TTLTable(rows []TTLRow) *Table {
	t := &Table{
		ID:      "A1",
		Title:   "ablation: query TTL vs reach and cost on a rendezvous chain",
		Columns: []string{"chain", "ttl", "found", "msgs/query", "hops to match"},
		Notes: []string{
			"the advert is cached at the far end of the chain; TTL bounds propagation",
			"shape check: success flips on at ttl = chain length; message cost grows with ttl",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.Chain), fmt.Sprint(r.TTL), fmt.Sprint(r.Success),
			fmt.Sprint(r.Messages), f64(r.Hops),
		})
	}
	return t
}

// ChainDepthRow is one A2 measurement: engine dispatch cost as the
// in/out handler chains grow.
type ChainDepthRow struct {
	Depth   int
	PerCall time.Duration
}

// RunChainDepth measures A2: the cost of the Axis-style handler chain as
// it deepens. Chains are WSPeer's extension seam; this quantifies what
// each no-op stage costs on the dispatch path.
func RunChainDepth(depths []int, iterations int) ([]ChainDepthRow, error) {
	var rows []ChainDepthRow
	for _, depth := range depths {
		eng := engine.New()
		if _, err := eng.Deploy(engine.ServiceDef{
			Name: "Echo",
			Operations: []engine.OperationDef{{
				Name: "echo", Func: func(s string) string { return s }, ParamNames: []string{"msg"},
			}},
		}); err != nil {
			return nil, err
		}
		for i := 0; i < depth; i++ {
			eng.AddInHandler(engine.ChainFunc{
				ChainName: fmt.Sprintf("in-%d", i),
				Func:      func(*engine.MessageContext) error { return nil },
			})
			eng.AddOutHandler(engine.ChainFunc{
				ChainName: fmt.Sprintf("out-%d", i),
				Func:      func(*engine.MessageContext) error { return nil },
			})
		}
		svc := eng.Service("Echo")
		defs, err := svc.WSDL(wsdl.TransportHTTP, "mem://h/Echo")
		if err != nil {
			return nil, err
		}
		stub := engine.NewStub(defs, nil)
		req, _, err := stub.BuildRequest("echo", engine.P("msg", "x"))
		if err != nil {
			return nil, err
		}
		ctx := context.Background()
		// Warm up allocator and caches so the first depth isn't penalized.
		for i := 0; i < iterations/10+10; i++ {
			if _, err := eng.ServeRequest(ctx, "Echo", req); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		for i := 0; i < iterations; i++ {
			resp, err := eng.ServeRequest(ctx, "Echo", req)
			if err != nil || resp.Faulted {
				return nil, fmt.Errorf("dispatch failed at depth %d: %v", depth, err)
			}
		}
		rows = append(rows, ChainDepthRow{Depth: depth, PerCall: time.Since(start) / time.Duration(iterations)})
	}
	return rows, nil
}

// ChainDepthTable renders A2.
func ChainDepthTable(rows []ChainDepthRow) *Table {
	t := &Table{
		ID:      "A2",
		Title:   "ablation: handler-chain depth vs dispatch cost (in+out chains, no-op stages)",
		Columns: []string{"stages per chain", "dispatch per call"},
	}
	base := rows[0].PerCall
	for _, r := range rows {
		overhead := ""
		if r.Depth > 0 && base > 0 && r.PerCall > base {
			overhead = fmt.Sprintf(" (+%s)", (r.PerCall - base).String())
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(r.Depth), r.PerCall.String() + overhead})
	}
	t.Notes = append(t.Notes, "shape check: no-op stages cost well under a microsecond each")
	return t
}
