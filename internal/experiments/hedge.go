package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"wspeer/internal/core"
	"wspeer/internal/engine"
	"wspeer/internal/telemetry"
	"wspeer/internal/transport"
	"wspeer/internal/wsdl"
)

// HedgeRow is one R2 measurement: tail latency over a bimodal-latency
// service with or without hedged invocations.
type HedgeRow struct {
	Hedged bool
	Calls  int
	P50    time.Duration
	P99    time.Duration
	Mean   time.Duration
	// Hedges is how many hedge attempts launched (0 for the unhedged
	// stack).
	Hedges int64
}

// bimodalDelay produces seeded, reproducible bimodal latency: most calls
// take fast, a slowFraction of them take slow — the canonical shape
// hedging exists for (a straggling tail on an otherwise fast service).
type bimodalDelay struct {
	mu           sync.Mutex
	rng          *rand.Rand
	fast, slow   time.Duration
	slowFraction float64
}

func (b *bimodalDelay) next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rng.Float64() < b.slowFraction {
		return b.slow
	}
	return b.fast
}

// RunHedgeSweep measures R2: `calls` invocations of a service whose
// replicas answer with bimodal latency (90% fast, 10% straggling), once
// through a plain invocation and once through a hedged invocation that
// races the second replica when the primary passes the hedge threshold.
// The hedged stack should collapse the p99 toward the fast mode at the
// cost of a small fraction of duplicate calls.
func RunHedgeSweep(seed int64, calls int) ([]HedgeRow, error) {
	var rows []HedgeRow
	for _, hedged := range []bool{false, true} {
		row, err := runHedgeCell(seed, calls, hedged)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func runHedgeCell(seed int64, calls int, hedged bool) (*HedgeRow, error) {
	const (
		fastMode     = 200 * time.Microsecond
		slowMode     = 20 * time.Millisecond
		slowFraction = 0.10
		threshold    = 2 * time.Millisecond
	)
	endpoints := []string{"mem://a/Echo", "mem://b/Echo"}

	eng := engine.New()
	if _, err := eng.Deploy(engine.ServiceDef{
		Name: "Echo",
		Operations: []engine.OperationDef{{
			Name: "echo", Func: func(s string) string { return s }, ParamNames: []string{"msg"},
		}},
	}); err != nil {
		return nil, err
	}

	netw := transport.NewInMemNetwork()
	for i, ep := range endpoints {
		delay := &bimodalDelay{
			rng:  rand.New(rand.NewSource(seed + int64(i))),
			fast: fastMode, slow: slowMode, slowFraction: slowFraction,
		}
		netw.Register(ep, transport.HandlerFunc(func(ctx context.Context, req *transport.Request) (*transport.Response, error) {
			select {
			case <-time.After(delay.next()):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return eng.ServeRequest(ctx, "Echo", req)
		}))
	}

	reg := transport.NewRegistry()
	reg.Register(netw.Transport())
	stubs := make(map[string]*engine.Stub, len(endpoints))
	for _, ep := range endpoints {
		defs, err := eng.Service("Echo").WSDL(wsdl.TransportHTTP, ep)
		if err != nil {
			return nil, err
		}
		stubs[ep] = engine.NewStub(defs, reg)
	}

	peer := core.NewPeer()
	peer.Client().RegisterInvoker(&memInvoker{stubs: stubs})

	infos := make([]*core.ServiceInfo, len(endpoints))
	for i, ep := range endpoints {
		infos[i] = &core.ServiceInfo{Name: "Echo", Endpoint: ep}
	}
	var inv *core.Invocation
	var err error
	if hedged {
		// Two hedges: with 10% stragglers per replica, ~1% of calls
		// straggle on both of the first two attempts — right at the p99
		// boundary for 200 calls — so a third attempt is what actually
		// collapses the p99.
		inv, err = peer.Client().NewHedgedInvocation(core.HedgeOptions{Threshold: threshold, MaxHedges: 2}, infos...)
	} else {
		inv, err = peer.Client().NewInvocation(infos[0])
	}
	if err != nil {
		return nil, err
	}

	mLaunched := telemetry.Default().Meter.Counter("pipeline.hedge.launched")
	launched0 := mLaunched.Value()
	ctx := context.Background()
	latencies := make([]time.Duration, 0, calls)
	for i := 0; i < calls; i++ {
		start := time.Now()
		if _, err := inv.Invoke(ctx, "echo", engine.P("msg", "x")); err != nil {
			return nil, fmt.Errorf("experiments: hedge cell call %d: %w", i, err)
		}
		latencies = append(latencies, time.Since(start))
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	return &HedgeRow{
		Hedged: hedged,
		Calls:  calls,
		P50:    latencies[len(latencies)/2],
		P99:    latencies[(len(latencies)*99)/100],
		Mean:   sum / time.Duration(len(latencies)),
		Hedges: mLaunched.Value() - launched0,
	}, nil
}

// HedgeTable renders R2.
func HedgeTable(rows []HedgeRow) *Table {
	t := &Table{
		ID:      "R2",
		Title:   "hedging: tail latency over a bimodal (10% straggler) service",
		Columns: []string{"stack", "calls", "p50", "p99", "mean", "hedges launched"},
		Notes: []string{
			"two replicas, 90% of calls ~200µs, 10% ~20ms; hedge threshold 2ms",
			"shape check: hedging collapses p99 toward the fast mode for ~10% duplicate calls",
		},
	}
	for _, r := range rows {
		stack := "plain"
		if r.Hedged {
			stack = "hedged"
		}
		t.Rows = append(t.Rows, []string{
			stack, fmt.Sprint(r.Calls),
			r.P50.String(), r.P99.String(), r.Mean.String(),
			fmt.Sprint(r.Hedges),
		})
	}
	return t
}
