package experiments

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"
)

func TestTablePrint(t *testing.T) {
	tab := &Table{
		ID:      "EX",
		Title:   "test table",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"wide-cell", "3"}},
		Notes:   []string{"a note"},
	}
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	for _, want := range []string{"EX — test table", "long-column", "wide-cell", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestDiscoveryScalingShape(t *testing.T) {
	rows, err := RunDiscoveryScaling(1, []int{16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]DiscoveryScalingRow{}
	for _, r := range rows {
		byKey[string(r.Mode)+"/"+itoa(r.Peers)] = r
		if r.Success < 0.99 {
			t.Errorf("%s@%d: success %.2f", r.Mode, r.Peers, r.Success)
		}
	}
	// Central hottest load grows linearly with peers.
	if byKey["central/64"].HottestΔ != 4*byKey["central/16"].HottestΔ {
		t.Errorf("central load not linear: %d vs %d",
			byKey["central/16"].HottestΔ, byKey["central/64"].HottestΔ)
	}
	// Mesh hottest load at the larger size is well below central's.
	if byKey["p2ps-mesh/64"].HottestΔ >= byKey["central/64"].HottestΔ {
		t.Errorf("mesh hottest %d not below central %d",
			byKey["p2ps-mesh/64"].HottestΔ, byKey["central/64"].HottestΔ)
	}
	// Flood pays more messages per query than mesh.
	if byKey["p2ps-flood/64"].PerQuery <= byKey["p2ps-mesh/64"].PerQuery {
		t.Errorf("flood per-query %f not above mesh %f",
			byKey["p2ps-flood/64"].PerQuery, byKey["p2ps-mesh/64"].PerQuery)
	}
	// Table renders.
	var buf bytes.Buffer
	DiscoveryScalingTable(rows).Print(&buf)
	if !strings.Contains(buf.String(), "E5") {
		t.Fatal("table did not render")
	}
}

func itoa(n int) string {
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestChurnShape(t *testing.T) {
	rows, err := RunChurn(1, 48, []float64{0, 0.5}, 24, 2)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]ChurnRow{}
	for _, r := range rows {
		byKey[string(r.Mode)+"/"+fpct(r.KillFrac)] = r
	}
	// No churn: everything works.
	for _, mode := range []DiscoveryMode{ModeCentral, ModeMesh, ModeFlood} {
		if byKey[string(mode)+"/0.0%"].Success < 0.99 {
			t.Errorf("%s at 0%% churn: %.2f", mode, byKey[string(mode)+"/0.0%"].Success)
		}
	}
	// Heavy churn hurts everyone but leaves the mesh partially working.
	if byKey["p2ps-mesh/50.0%"].Success <= 0 {
		t.Error("mesh should survive some churn")
	}
	var buf bytes.Buffer
	ChurnTable(rows).Print(&buf)
	if !strings.Contains(buf.String(), "E6") {
		t.Fatal("table did not render")
	}
}

func TestSyncAsyncShape(t *testing.T) {
	r, err := RunSyncVsAsync(1, 12, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if r.AsyncWall >= r.SyncWall {
		t.Errorf("async %v not faster than sync %v", r.AsyncWall, r.SyncWall)
	}
	if r.Speedup <= 1 {
		t.Errorf("speedup = %f", r.Speedup)
	}
	// Async wall-clock should be in the vicinity of the slowest node, not
	// the sum.
	if r.AsyncWall > 5*r.SlowestNode+50*time.Millisecond {
		t.Errorf("async wall %v far above slowest node %v", r.AsyncWall, r.SlowestNode)
	}
	var buf bytes.Buffer
	SyncAsyncTable(r).Print(&buf)
	if !strings.Contains(buf.String(), "E7") {
		t.Fatal("table did not render")
	}
}

func TestStubShape(t *testing.T) {
	r, err := RunStubComparison(200)
	if err != nil {
		t.Fatal(err)
	}
	if r.Reparse <= r.Dynamic {
		t.Errorf("reparse %v should cost more than dynamic %v", r.Reparse, r.Dynamic)
	}
	if r.Dynamic <= 0 || r.Static <= 0 {
		t.Error("degenerate timings")
	}
	var buf bytes.Buffer
	StubTable(r).Print(&buf)
	if !strings.Contains(buf.String(), "E8") {
		t.Fatal("table did not render")
	}
}

func TestDeployShape(t *testing.T) {
	r, err := RunDeploy(32)
	if err != nil {
		t.Fatal(err)
	}
	if r.LazyIdleListener {
		t.Error("lazy host held a listener before any deployment")
	}
	if !r.EagerIdleListener {
		t.Error("eager host should have a running listener")
	}
	if r.BulkPerDeply <= 0 || r.LazyFirstService <= 0 {
		t.Error("degenerate timings")
	}
	var buf bytes.Buffer
	DeployTable(r).Print(&buf)
	if !strings.Contains(buf.String(), "E9") {
		t.Fatal("table did not render")
	}
}

func TestStatefulShape(t *testing.T) {
	r, err := RunStateful(50)
	if err != nil {
		t.Fatal(err)
	}
	if !r.StateVerified {
		t.Error("state not verified")
	}
	if r.FinalState != 50 {
		t.Errorf("final state = %d", r.FinalState)
	}
	var buf bytes.Buffer
	StatefulTable(r).Print(&buf)
	if !strings.Contains(buf.String(), "E10") {
		t.Fatal("table did not render")
	}
}

func TestEventsShape(t *testing.T) {
	r, err := RunEvents(500)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OrderedCheck {
		t.Error("events lost or disordered")
	}
	if r.Delivered != 500 {
		t.Errorf("delivered = %d", r.Delivered)
	}
	var buf bytes.Buffer
	EventsTable(r).Print(&buf)
	if !strings.Contains(buf.String(), "E1") {
		t.Fatal("table did not render")
	}
}

func TestPipeStepsShape(t *testing.T) {
	r, err := RunPipeSteps(32)
	if err != nil {
		t.Fatal(err)
	}
	if r.Correlated != 32 {
		t.Errorf("correlated %d/32", r.Correlated)
	}
	if r.RoundTrip <= 0 || r.AdvertToEPR <= 0 {
		t.Error("degenerate timings")
	}
	var buf bytes.Buffer
	PipeStepsTable(r).Print(&buf)
	if !strings.Contains(buf.String(), "E4") {
		t.Fatal("table did not render")
	}
}

func TestLifecycles(t *testing.T) {
	httpRes, err := RunHTTPLifecycle([]int{1, 4}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if httpRes.Invoke <= 0 || httpRes.Throughput[4] <= 0 {
		t.Errorf("http lifecycle: %+v", httpRes)
	}
	p2psRes, err := RunP2PSLifecycle([]int{1, 4}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if p2psRes.Invoke <= 0 || p2psRes.Throughput[4] <= 0 {
		t.Errorf("p2ps lifecycle: %+v", p2psRes)
	}
	var buf bytes.Buffer
	LifecycleTable("E2", httpRes, p2psRes).Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "http/uddi") || !strings.Contains(out, "p2ps") {
		t.Fatalf("table: %s", out)
	}
}

func TestBuildOverlayValidation(t *testing.T) {
	o, err := BuildOverlay(OverlayConfig{Seed: 1, Providers: 4, Rendezvous: 0, Mode: ModeCentral})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Rdvs) != 1 {
		t.Fatalf("rendezvous defaulted to %d", len(o.Rdvs))
	}
	// Homes beyond available rendezvous are clamped.
	o, err = BuildOverlay(OverlayConfig{Seed: 1, Providers: 4, Rendezvous: 2, Homes: 5, Mode: ModeMesh})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Providers) != 4 {
		t.Fatalf("providers = %d", len(o.Providers))
	}
}

func TestServiceName(t *testing.T) {
	if ServiceName(7) != "Svc-0007" {
		t.Fatalf("ServiceName = %q", ServiceName(7))
	}
}

func TestTTLSweepShape(t *testing.T) {
	rows, err := RunTTLSweep(1, 4, []int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	byTTL := map[int]TTLRow{}
	for _, r := range rows {
		byTTL[r.TTL] = r
	}
	// TTL 1 cannot cross a 4-rendezvous chain; TTL 4 can.
	if byTTL[1].Success {
		t.Error("TTL 1 reached the far end of a 4-chain")
	}
	if !byTTL[4].Success {
		t.Error("TTL 4 failed to reach the far end of a 4-chain")
	}
	// Message cost is monotone in TTL until reach saturates.
	if byTTL[2].Messages < byTTL[1].Messages {
		t.Errorf("messages not monotone: ttl1=%d ttl2=%d", byTTL[1].Messages, byTTL[2].Messages)
	}
	var buf bytes.Buffer
	TTLTable(rows).Print(&buf)
	if !strings.Contains(buf.String(), "A1") {
		t.Fatal("table did not render")
	}
}

func TestChainDepthShape(t *testing.T) {
	rows, err := RunChainDepth([]int{0, 8}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].PerCall <= 0 || rows[1].PerCall <= 0 {
		t.Fatalf("rows: %+v", rows)
	}
	var buf bytes.Buffer
	ChainDepthTable(rows).Print(&buf)
	if !strings.Contains(buf.String(), "A2") {
		t.Fatal("table did not render")
	}
}

func TestAllocBenchJSONForms(t *testing.T) {
	rs := []AllocBenchResult{
		{Name: "HTTPInvoke", N: 100, NsPerOp: 50000, BytesPerOp: 20000, AllocsPerOp: 195},
		{Name: "EngineDispatch", N: 1000, NsPerOp: 6000, BytesPerOp: 5600, AllocsPerOp: 41},
	}

	// The current wrapper form round-trips with its telemetry snapshot.
	wrapped := t.TempDir() + "/bench.json"
	thr := []ThroughputResult{{Name: "LocateCached", N: 1000, NsPerOp: 1500, CallsPerOp: 1, CallsPerSec: 666666}}
	if err := WriteAllocBenchJSON(wrapped, rs, thr, CollectBenchTelemetry()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllocBenchJSON(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "HTTPInvoke" || got[1].AllocsPerOp != 41 {
		t.Fatalf("wrapper round-trip = %+v", got)
	}

	// Pre-telemetry baselines are a bare array and must still load.
	legacy := t.TempDir() + "/legacy.json"
	if err := os.WriteFile(legacy, []byte(`[{"name":"HTTPInvoke","n":1,"ns_per_op":50000,"bytes_per_op":20000,"allocs_per_op":195}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	old, err := ReadAllocBenchJSON(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if len(old) != 1 || old[0].AllocsPerOp != 195 {
		t.Fatalf("legacy round-trip = %+v", old)
	}

	// The comparison gate reads either form identically.
	if errs := CompareAllocBenches(old, rs, 0.20); len(errs) != 0 {
		t.Fatalf("unexpected regressions: %v", errs)
	}
}
