package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"wspeer/internal/core"
	"wspeer/internal/engine"
)

// SyncAsyncResult compares synchronous sequential invocation against the
// event-driven asynchronous mode on a population of services with
// heavy-tailed response times — the paper's argument that "asynchronicity
// allows for P2P style interactions with unreliable nodes" (§III).
type SyncAsyncResult struct {
	Services     int
	SyncWall     time.Duration
	AsyncWall    time.Duration
	Speedup      float64
	SlowestNode  time.Duration
	MedianNode   time.Duration
	AsyncInOrder bool // whether async results arrived out of request order
}

// slowInvoker simulates remote services whose latencies follow a
// heavy-tailed distribution (a few very slow "unreliable" nodes).
type slowInvoker struct {
	delays map[string]time.Duration
}

func (s *slowInvoker) Schemes() []string { return []string{"slow"} }

func (s *slowInvoker) Invoke(ctx context.Context, svc *core.ServiceInfo, op string, params []engine.Param) (*engine.Result, error) {
	d := s.delays[svc.Name]
	select {
	case <-time.After(d):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return nil, nil
}

// RunSyncVsAsync measures E7: total wall-clock to collect a response from
// every one of n services, sequential-synchronous vs all-asynchronous.
func RunSyncVsAsync(seed int64, n int, meanLatency time.Duration) (*SyncAsyncResult, error) {
	rng := rand.New(rand.NewSource(seed))
	inv := &slowInvoker{delays: make(map[string]time.Duration, n)}
	var infos []*core.ServiceInfo
	var slowest time.Duration
	var all []time.Duration
	for i := 0; i < n; i++ {
		// Pareto-ish: most nodes fast, a few an order of magnitude slower.
		d := time.Duration(float64(meanLatency) * (0.2 + rng.ExpFloat64()))
		if rng.Intn(16) == 0 {
			d *= 8 // the unreliable stragglers
		}
		name := fmt.Sprintf("node-%03d", i)
		inv.delays[name] = d
		all = append(all, d)
		if d > slowest {
			slowest = d
		}
		infos = append(infos, &core.ServiceInfo{Name: name, Endpoint: "slow://" + name})
	}

	peer := core.NewPeer()
	peer.Client().RegisterInvoker(inv)
	ctx := context.Background()

	res := &SyncAsyncResult{Services: n, SlowestNode: slowest}
	// Median for the table.
	sorted := append([]time.Duration(nil), all...)
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	res.MedianNode = sorted[len(sorted)/2]

	// Synchronous: one at a time, the client blocked throughout.
	start := time.Now()
	for _, info := range infos {
		call, err := peer.Client().NewInvocation(info)
		if err != nil {
			return nil, err
		}
		if _, err := call.Invoke(ctx, "poll"); err != nil {
			return nil, err
		}
	}
	res.SyncWall = time.Since(start)

	// Asynchronous: fire everything, collect completions as events.
	var wg sync.WaitGroup
	var mu sync.Mutex
	var order []string
	start = time.Now()
	for _, info := range infos {
		call, err := peer.Client().NewInvocation(info)
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		name := info.Name
		call.InvokeAsync(ctx, "poll", nil, func(*engine.Result, error) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			wg.Done()
		})
	}
	wg.Wait()
	res.AsyncWall = time.Since(start)
	res.Speedup = float64(res.SyncWall) / float64(res.AsyncWall)
	for i, name := range order {
		if name != infos[i].Name {
			res.AsyncInOrder = false
			break
		}
		res.AsyncInOrder = true
	}
	return res, nil
}

// SyncAsyncTable renders E7.
func SyncAsyncTable(r *SyncAsyncResult) *Table {
	inOrder := "out of request order (event-driven)"
	if r.AsyncInOrder {
		inOrder = "in request order"
	}
	return &Table{
		ID:      "E7",
		Title:   "synchronous vs asynchronous invocation of slow/unreliable nodes",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"services polled", fmt.Sprint(r.Services)},
			{"median node latency", r.MedianNode.Round(time.Millisecond).String()},
			{"slowest node latency", r.SlowestNode.Round(time.Millisecond).String()},
			{"synchronous wall-clock", r.SyncWall.Round(time.Millisecond).String()},
			{"asynchronous wall-clock", r.AsyncWall.Round(time.Millisecond).String()},
			{"speedup", f64(r.Speedup) + "x"},
			{"async completions arrived", inOrder},
		},
		Notes: []string{
			"shape check: async wall-clock ≈ slowest node; sync ≈ sum of all nodes",
		},
	}
}
