package experiments

import (
	"context"
	"fmt"
	"testing"
	"time"

	"wspeer"
	"wspeer/internal/engine"
	"wspeer/internal/httpd"
)

// The throughput experiments (A4) measure the resolution cache and the
// bounded invocation scheduler in calls per second — the axis the
// allocation benchmarks (A3) don't see. Two workloads:
//
//   - Locate: a live UDDI inquiry over HTTP versus the same query served
//     by the per-client resolution cache.
//   - Invoke: a 100-call burst against a service with 1ms simulated
//     service time, run sequentially versus scattered through
//     InvokeMany on the bounded scheduler. The simulated service time
//     models a remote peer; on loopback the burst is pure CPU and a
//     scatter cannot beat a single core.

// ThroughputResult is one throughput measurement, JSON-stable so the
// bench trajectory files can track calls/sec across runs.
type ThroughputResult struct {
	Name string `json:"name"`
	// N is the number of measured iterations (testing.Benchmark's b.N).
	N int `json:"n"`
	// NsPerOp is wall time per iteration; one iteration makes
	// CallsPerOp calls.
	NsPerOp float64 `json:"ns_per_op"`
	// CallsPerOp is how many service calls (or resolutions) one
	// iteration performs.
	CallsPerOp int `json:"calls_per_op"`
	// CallsPerSec is the sustained rate: CallsPerOp / (NsPerOp in s).
	CallsPerSec float64 `json:"calls_per_sec"`
}

func toThroughput(name string, callsPerOp int, r testing.BenchmarkResult) ThroughputResult {
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return ThroughputResult{
		Name:        name,
		N:           r.N,
		NsPerOp:     ns,
		CallsPerOp:  callsPerOp,
		CallsPerSec: float64(callsPerOp) * 1e9 / ns,
	}
}

// RunThroughput measures resolution and scatter throughput in-process.
// Each closure mirrors the corresponding E12 benchmark in bench_test.go.
func RunThroughput() ([]ThroughputResult, error) {
	var out []ThroughputResult
	var setupErr error

	// Locate, uncached vs cached, against a live UDDI-over-HTTP registry.
	{
		registryHost := httpd.New(engine.New(), httpd.Options{})
		registryURL, err := registryHost.Deploy(wspeer.UDDIServiceDef(wspeer.NewUDDIRegistry()))
		if err != nil {
			registryHost.Close()
			return nil, err
		}
		peer := wspeer.NewPeer()
		binding, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{UDDIEndpoint: registryURL})
		if err != nil {
			registryHost.Close()
			return nil, err
		}
		binding.Attach(peer)
		if _, err := peer.Server().DeployAndPublish(context.Background(), allocEchoDef()); err != nil {
			binding.Close()
			registryHost.Close()
			return nil, err
		}
		ctx := context.Background()
		q := wspeer.NameQuery{Name: "Echo"}

		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if infos, err := peer.Client().Locate(ctx, q); err != nil || len(infos) == 0 {
					setupErr = fmt.Errorf("locate: %v %v", infos, err)
					b.FailNow()
				}
			}
		})
		if setupErr == nil {
			out = append(out, toThroughput("LocateUncached", 1, r))
			peer.Client().ConfigureResolutionCache(wspeer.ResolutionCacheOptions{TTL: time.Hour})
			r = testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if infos, err := peer.Client().LocateCached(ctx, q); err != nil || len(infos) == 0 {
						setupErr = fmt.Errorf("locate cached: %v %v", infos, err)
						b.FailNow()
					}
				}
			})
			if setupErr == nil {
				out = append(out, toThroughput("LocateCached", 1, r))
			}
		}
		binding.Close()
		registryHost.Close()
		if setupErr != nil {
			return nil, setupErr
		}
	}

	// 100-call burst, sequential vs scattered, 1ms simulated service time.
	{
		const burst = 100
		const serviceTime = time.Millisecond
		peer := wspeer.NewPeer()
		binding, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{})
		if err != nil {
			return nil, err
		}
		binding.Attach(peer)
		def := allocEchoDef()
		def.Operations[0].Func = func(s string) string {
			time.Sleep(serviceTime)
			return s
		}
		dep, err := peer.Server().Deploy(def)
		if err != nil {
			binding.Close()
			return nil, err
		}
		svcs := make([]*wspeer.ServiceInfo, burst)
		for i := range svcs {
			svcs[i] = &wspeer.ServiceInfo{Name: "Echo", Endpoint: dep.Endpoint, Definitions: dep.Definitions}
		}
		peer.Client().ConfigureScheduler(wspeer.SchedulerOptions{MaxConcurrent: 32, MaxQueue: 256})
		ctx := context.Background()

		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, svc := range svcs {
					inv, err := peer.Client().NewInvocation(svc)
					if err != nil {
						setupErr = err
						b.FailNow()
					}
					if _, err := inv.Invoke(ctx, "echo", wspeer.P("msg", "x")); err != nil {
						setupErr = err
						b.FailNow()
					}
				}
			}
		})
		if setupErr == nil {
			out = append(out, toThroughput("InvokeSequential100", burst, r))
			r = testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for _, mr := range peer.Client().InvokeMany(ctx, svcs, "echo", []wspeer.Param{wspeer.P("msg", "x")}) {
						if mr.Err != nil {
							setupErr = mr.Err
							b.FailNow()
						}
					}
				}
			})
			if setupErr == nil {
				out = append(out, toThroughput("InvokeMany100", burst, r))
			}
		}
		binding.Close()
		if setupErr != nil {
			return nil, setupErr
		}
	}

	return out, nil
}

// ThroughputTable renders the throughput measurements.
func ThroughputTable(rs []ThroughputResult) *Table {
	t := &Table{
		ID:      "A4",
		Title:   "resolution cache and scheduler throughput: calls per second",
		Columns: []string{"workload", "calls/op", "ns/op", "calls/sec"},
		Notes: []string{
			"Invoke* workloads run against 1ms simulated service time (remote-peer regime)",
			"measured in-process via testing.Benchmark",
		},
	}
	for _, r := range rs {
		t.Rows = append(t.Rows, []string{
			r.Name,
			fmt.Sprintf("%d", r.CallsPerOp),
			fmt.Sprintf("%.0f", r.NsPerOp),
			fmt.Sprintf("%.0f", r.CallsPerSec),
		})
	}
	return t
}
