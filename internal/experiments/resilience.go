package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wspeer/internal/core"
	"wspeer/internal/engine"
	"wspeer/internal/resilience"
	"wspeer/internal/transport"
	"wspeer/internal/wsdl"
)

// ResilienceRow is one R1 measurement: invocation outcomes at one injected
// fault rate, with or without the resilience stack (circuit breaker +
// cross-binding failover to a healthy replica).
type ResilienceRow struct {
	FaultRate  float64
	Resilient  bool
	Calls      int
	Successes  int
	P99        time.Duration
	FailedOver int64 // calls the fallback replica served
}

// memInvoker invokes mem:// endpoints through per-endpoint stubs, standing
// in for a binding on the latency-free in-memory network.
type memInvoker struct {
	stubs map[string]*engine.Stub
}

func (m *memInvoker) Schemes() []string { return []string{"mem"} }

func (m *memInvoker) Invoke(ctx context.Context, svc *core.ServiceInfo, op string, params []engine.Param) (*engine.Result, error) {
	stub, ok := m.stubs[svc.Endpoint]
	if !ok {
		return nil, fmt.Errorf("experiments: no stub for %q", svc.Endpoint)
	}
	return stub.Invoke(ctx, op, params...)
}

// manualClock advances only when told to, making breaker open-timeouts a
// function of call count rather than wall time.
type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// RunResilienceSweep measures R1: one primary endpoint with seeded faults
// injected at each rate and one healthy replica, invoked `calls` times per
// cell. The bare stack invokes the primary directly and surfaces every
// injected failure; the resilient stack (per-endpoint circuit breaker +
// failover invocation) should hold success at 100% by routing around the
// fault while the breaker is open.
func RunResilienceSweep(seed int64, calls int, rates []float64) ([]ResilienceRow, error) {
	var rows []ResilienceRow
	for _, rate := range rates {
		for _, resilient := range []bool{false, true} {
			row, err := runResilienceCell(seed, calls, rate, resilient)
			if err != nil {
				return nil, err
			}
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

func runResilienceCell(seed int64, calls int, rate float64, resilient bool) (*ResilienceRow, error) {
	const (
		primary  = "mem://primary/Echo"
		fallback = "mem://fallback/Echo"
	)
	eng := engine.New()
	if _, err := eng.Deploy(engine.ServiceDef{
		Name: "Echo",
		Operations: []engine.OperationDef{{
			Name: "echo", Func: func(s string) string { return s }, ParamNames: []string{"msg"},
		}},
	}); err != nil {
		return nil, err
	}
	serve := func(counter *atomic.Int64) transport.Handler {
		return transport.HandlerFunc(func(ctx context.Context, req *transport.Request) (*transport.Response, error) {
			if counter != nil {
				counter.Add(1)
			}
			return eng.ServeRequest(ctx, "Echo", req)
		})
	}
	var failedOver atomic.Int64
	netw := transport.NewInMemNetwork()
	netw.Register(primary, serve(nil))
	netw.Register(fallback, serve(&failedOver))

	inj := resilience.NewInjector(seed)
	inj.SetPlans(resilience.FaultPlan{Endpoint: primary, ErrorRate: rate})
	reg := transport.NewRegistry()
	reg.Register(inj.Transport(netw.Transport()))

	stubFor := func(endpoint string) (*engine.Stub, error) {
		defs, err := eng.Service("Echo").WSDL(wsdl.TransportHTTP, endpoint)
		if err != nil {
			return nil, err
		}
		return engine.NewStub(defs, reg), nil
	}
	ps, err := stubFor(primary)
	if err != nil {
		return nil, err
	}
	fs, err := stubFor(fallback)
	if err != nil {
		return nil, err
	}

	peer := core.NewPeer()
	peer.Client().RegisterInvoker(&memInvoker{stubs: map[string]*engine.Stub{primary: ps, fallback: fs}})
	clock := &manualClock{t: time.Unix(0, 0)}
	peer.Client().ConfigureBreakers(resilience.BreakerOptions{
		Window:           8,
		FailureThreshold: 0.5,
		MinSamples:       4,
		OpenTimeout:      50 * time.Millisecond,
		Now:              clock.Now,
	})

	primaryInfo := &core.ServiceInfo{Name: "Echo", Endpoint: primary}
	fallbackInfo := &core.ServiceInfo{Name: "Echo", Endpoint: fallback}
	var inv *core.Invocation
	if resilient {
		inv, err = peer.Client().NewFailoverInvocation(primaryInfo, fallbackInfo)
	} else {
		inv, err = peer.Client().NewInvocation(primaryInfo)
	}
	if err != nil {
		return nil, err
	}

	ctx := context.Background()
	latencies := make([]time.Duration, 0, calls)
	successes := 0
	for i := 0; i < calls; i++ {
		clock.Advance(10 * time.Millisecond)
		start := time.Now()
		_, err := inv.Invoke(ctx, "echo", engine.P("msg", "x"))
		latencies = append(latencies, time.Since(start))
		if err == nil {
			successes++
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[(len(latencies)*99)/100]
	return &ResilienceRow{
		FaultRate:  rate,
		Resilient:  resilient,
		Calls:      calls,
		Successes:  successes,
		P99:        p99,
		FailedOver: failedOver.Load(),
	}, nil
}

// ResilienceTable renders R1.
func ResilienceTable(rows []ResilienceRow) *Table {
	t := &Table{
		ID:      "R1",
		Title:   "resilience: success rate and p99 latency vs injected fault rate",
		Columns: []string{"fault rate", "stack", "success", "p99", "served by replica"},
		Notes: []string{
			"primary endpoint faulted by the seeded injector; one healthy replica available",
			"shape check: the bare stack loses ~rate of its calls; breaker+failover holds 100%",
		},
	}
	for _, r := range rows {
		stack := "bare"
		if r.Resilient {
			stack = "breaker+failover"
		}
		t.Rows = append(t.Rows, []string{
			fpct(r.FaultRate), stack,
			fmt.Sprintf("%d/%d (%s)", r.Successes, r.Calls, fpct(float64(r.Successes)/float64(r.Calls))),
			r.P99.String(),
			fmt.Sprint(r.FailedOver),
		})
	}
	return t
}
