package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"wspeer"
	"wspeer/internal/binding/p2psbind"
	"wspeer/internal/p2ps"
	"wspeer/internal/soap"
	"wspeer/internal/wsaddr"
	"wspeer/internal/xmlutil"
)

// PipeStepResult times the individual steps of figures 5 and 6 — the
// request/response pattern over unidirectional pipes — and checks reply
// correlation under heavy interleaving.
type PipeStepResult struct {
	AdvertToEPR    time.Duration // serialize pipe advert → EndpointReference
	EPRToAdvert    time.Duration // parse it back (provider side)
	EnvelopeBuild  time.Duration // SOAP envelope with addressing headers
	RoundTrip      time.Duration // full request/response over the overlay
	Interleaved    int           // concurrent requests issued
	Correlated     int           // responses matched to their requests
	InterleaveTime time.Duration
}

// RunPipeSteps measures E4.
func RunPipeSteps(interleaved int) (*PipeStepResult, error) {
	res := &PipeStepResult{Interleaved: interleaved}

	// Micro steps, measured standalone over many iterations.
	pipe := &p2ps.PipeAdvertisement{ID: p2ps.NewPipeID(), Name: "requests", Peer: p2ps.NewPeerID()}
	const iters = 2000
	start := time.Now()
	var epr *wsaddr.EndpointReference
	for i := 0; i < iters; i++ {
		epr = p2psbind.PipeToEPR(pipe, "Echo")
	}
	res.AdvertToEPR = time.Since(start) / iters

	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, err := p2psbind.EPRToPipe(epr); err != nil {
			return nil, err
		}
	}
	res.EPRToAdvert = time.Since(start) / iters

	start = time.Now()
	for i := 0; i < iters; i++ {
		env := soap.NewEnvelope()
		env.AddBodyElement(xmlutil.NewElement(xmlutil.N("urn:x", "echo")))
		hdr := wsaddr.HeadersFor(epr, "p2ps://x/Echo#requests")
		hdr.ReplyTo = p2psbind.PipeToEPR(pipe, "")
		if err := hdr.Apply(env); err != nil {
			return nil, err
		}
		_ = env.Marshal()
	}
	res.EnvelopeBuild = time.Since(start) / iters

	// Full round trip plus interleaving on a live overlay.
	overlay := p2ps.NewLocalNetwork()
	rdv, err := p2ps.NewPeer(p2ps.Config{Transport: overlay.NewEndpoint(), Rendezvous: true})
	if err != nil {
		return nil, err
	}
	defer rdv.Close()
	provNode, err := p2ps.NewPeer(p2ps.Config{Transport: overlay.NewEndpoint(), Seeds: []string{rdv.Addr()}})
	if err != nil {
		return nil, err
	}
	defer provNode.Close()
	consNode, err := p2ps.NewPeer(p2ps.Config{Transport: overlay.NewEndpoint(), Seeds: []string{rdv.Addr()}})
	if err != nil {
		return nil, err
	}
	defer consNode.Close()

	provBinding, err := p2psbind.New(p2psbind.Options{Peer: provNode})
	if err != nil {
		return nil, err
	}
	provPeer := wspeer.NewPeer()
	provBinding.Attach(provPeer)
	consBinding, err := p2psbind.New(p2psbind.Options{Peer: consNode, DiscoveryTimeout: 250 * time.Millisecond})
	if err != nil {
		return nil, err
	}
	consPeer := wspeer.NewPeer()
	consBinding.Attach(consPeer)

	ctx := context.Background()
	if _, err := provPeer.Server().DeployAndPublish(ctx, wspeer.ServiceDef{
		Name: "Echo",
		Operations: []wspeer.OperationDef{{
			Name:       "echo",
			Func:       func(s string) string { return s },
			ParamNames: []string{"msg"},
		}},
	}); err != nil {
		return nil, err
	}
	var info *wspeer.ServiceInfo
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if info, err = consPeer.Client().LocateOne(ctx, wspeer.NameQuery{Name: "Echo"}); err == nil {
			break
		}
	}
	if info == nil {
		return nil, fmt.Errorf("locate: %v", err)
	}
	inv, err := consPeer.Client().NewInvocation(info)
	if err != nil {
		return nil, err
	}

	start = time.Now()
	if _, err := inv.Invoke(ctx, "echo", wspeer.P("msg", "rt")); err != nil {
		return nil, err
	}
	res.RoundTrip = time.Since(start)

	// Interleaving: many concurrent requests, each asserting its own
	// payload comes back — the correlation property ReplyTo+RelatesTo
	// must guarantee.
	var wg sync.WaitGroup
	var mu sync.Mutex
	start = time.Now()
	for i := 0; i < interleaved; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("payload-%d", i)
			r, err := inv.Invoke(ctx, "echo", wspeer.P("msg", want))
			if err != nil {
				return
			}
			got, err := r.String("return")
			if err == nil && got == want {
				mu.Lock()
				res.Correlated++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	res.InterleaveTime = time.Since(start)
	return res, nil
}

// PipeStepsTable renders E4.
func PipeStepsTable(r *PipeStepResult) *Table {
	return &Table{
		ID:      "E4",
		Title:   "request/response over unidirectional pipes (figures 5 and 6)",
		Columns: []string{"step", "cost"},
		Rows: [][]string{
			{"pipe advert -> EndpointReference", r.AdvertToEPR.String()},
			{"EndpointReference -> pipe advert", r.EPRToAdvert.String()},
			{"SOAP envelope + addressing headers", r.EnvelopeBuild.String()},
			{"full round trip (overlay)", r.RoundTrip.Round(time.Microsecond).String()},
			{fmt.Sprintf("interleaved correlation (%d concurrent)", r.Interleaved),
				fmt.Sprintf("%d/%d correct in %s", r.Correlated, r.Interleaved, r.InterleaveTime.Round(time.Millisecond))},
		},
		Notes: []string{"correlation uses the ReplyTo pipe + RelatesTo message ID exactly as §IV-B specifies"},
	}
}
