package experiments

import (
	"context"
	"fmt"
	"time"

	"wspeer"
	"wspeer/internal/engine"
	"wspeer/internal/httpd"
	"wspeer/internal/transport"
)

// DeployResult measures E9: container-less lazy hosting. The paper's
// claim is that WSPeer inverts the container relationship — "the HTTP
// server is only launched once the application has deployed a service" —
// so a peer that never serves pays nothing, and time-to-first-service is
// one deploy, not a container boot.
type DeployResult struct {
	// LazyFirstService is process-start → first request served, with the
	// listener launched lazily by the deployment itself.
	LazyFirstService time.Duration
	// EagerFirstService is the same but with the listener started ahead
	// of time (the traditional always-on container shape).
	EagerFirstService time.Duration
	// IdleCost reports whether an idle peer holds a listener open.
	LazyIdleListener, EagerIdleListener bool
	// BulkDeploys measures dynamic-deployment throughput.
	BulkN        int
	BulkTotal    time.Duration
	BulkPerDeply time.Duration
}

func deployEcho(name string) engine.ServiceDef {
	return engine.ServiceDef{
		Name: name,
		Operations: []engine.OperationDef{{
			Name:       "echo",
			Func:       func(s string) string { return s },
			ParamNames: []string{"msg"},
		}},
	}
}

// firstServiceTime deploys Echo on the host and invokes it once, returning
// the elapsed time from just before deployment.
func firstServiceTime(host *httpd.Host) (time.Duration, error) {
	start := time.Now()
	endpoint, err := host.Deploy(deployEcho("Echo"))
	if err != nil {
		return 0, err
	}
	tr := transport.NewHTTPTransport()
	stubDefs, err := host.WSDL("Echo")
	if err != nil {
		return 0, err
	}
	reg := transport.NewRegistry()
	reg.Register(tr)
	stub := engine.NewStub(stubDefs, reg)
	stub.EndpointOverride = endpoint
	if _, err := stub.Invoke(context.Background(), "echo", engine.P("msg", "x")); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// RunDeploy measures E9.
func RunDeploy(bulk int) (*DeployResult, error) {
	res := &DeployResult{BulkN: bulk}

	// Lazy: the host exists but holds no listener until Deploy.
	lazyEng := engine.New()
	lazyHost := httpd.New(lazyEng, httpd.Options{})
	defer lazyHost.Close()
	res.LazyIdleListener = lazyHost.Started()
	d, err := firstServiceTime(lazyHost)
	if err != nil {
		return nil, err
	}
	res.LazyFirstService = d

	// Eager: pre-start the listener by deploying a placeholder early (the
	// container-boots-first shape), then measure the same deploy+invoke.
	eagerEng := engine.New()
	eagerHost := httpd.New(eagerEng, httpd.Options{})
	defer eagerHost.Close()
	if _, err := eagerHost.Deploy(deployEcho("Warmup")); err != nil {
		return nil, err
	}
	res.EagerIdleListener = eagerHost.Started()
	d, err = firstServiceTime(eagerHost)
	if err != nil {
		return nil, err
	}
	res.EagerFirstService = d

	// Bulk dynamic deployments on one running host.
	bulkEng := engine.New()
	bulkHost := httpd.New(bulkEng, httpd.Options{})
	defer bulkHost.Close()
	start := time.Now()
	for i := 0; i < bulk; i++ {
		if _, err := bulkHost.Deploy(deployEcho(fmt.Sprintf("Svc%04d", i))); err != nil {
			return nil, err
		}
	}
	res.BulkTotal = time.Since(start)
	res.BulkPerDeply = res.BulkTotal / time.Duration(bulk)
	return res, nil
}

// DeployTable renders E9.
func DeployTable(r *DeployResult) *Table {
	onOff := func(b bool) string {
		if b {
			return "listener running"
		}
		return "no listener"
	}
	return &Table{
		ID:      "E9",
		Title:   "container-less lazy hosting (deploy-to-first-request and dynamic deployment throughput)",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"idle peer before any deploy (lazy)", onOff(r.LazyIdleListener)},
			{"idle peer (eager/container shape)", onOff(r.EagerIdleListener)},
			{"deploy -> first request served (lazy, incl. listener launch)", r.LazyFirstService.Round(time.Microsecond).String()},
			{"deploy -> first request served (listener pre-started)", r.EagerFirstService.Round(time.Microsecond).String()},
			{fmt.Sprintf("bulk dynamic deploys (n=%d) total", r.BulkN), r.BulkTotal.Round(time.Microsecond).String()},
			{"per dynamic deployment", r.BulkPerDeply.Round(time.Microsecond).String()},
		},
		Notes: []string{
			"shape check: lazy adds only the one-off listener launch; idle lazy peers hold no socket",
		},
	}
}

// ---------------------------------------------------------------------------
// E10: stateful-object services

// StatefulResult compares invoking a stateless function operation against
// an operation bound to a live object (paper §III point 3).
type StatefulResult struct {
	Invocations   int
	StatelessPer  time.Duration
	StatefulPer   time.Duration
	FinalState    int64
	StateVerified bool
}

// e10Counter is the stateful object.
type e10Counter struct{ n int64 }

// Increment adds one and returns the total.
func (c *e10Counter) Increment() int64 { c.n++; return c.n }

// RunStateful measures E10 over the in-memory transport.
func RunStateful(invocations int) (*StatefulResult, error) {
	ctx := context.Background()
	res := &StatefulResult{Invocations: invocations}

	run := func(def engine.ServiceDef, op string) (time.Duration, *engine.Stub, error) {
		eng := engine.New()
		svc, err := eng.Deploy(def)
		if err != nil {
			return 0, nil, err
		}
		net := transport.NewInMemNetwork()
		addr := "mem://host/" + def.Name
		net.Register(addr, eng.Handler(def.Name))
		defs, err := svc.WSDL("urn:mem", addr)
		if err != nil {
			return 0, nil, err
		}
		reg := transport.NewRegistry()
		reg.Register(net.Transport())
		stub := engine.NewStub(defs, reg)
		start := time.Now()
		for i := 0; i < invocations; i++ {
			if _, err := stub.Invoke(ctx, op); err != nil {
				return 0, nil, err
			}
		}
		return time.Since(start) / time.Duration(invocations), stub, nil
	}

	statelessDef := engine.ServiceDef{
		Name:       "Stateless",
		Operations: []engine.OperationDef{{Name: "Increment", Func: func() int64 { return 1 }}},
	}
	per, _, err := run(statelessDef, "Increment")
	if err != nil {
		return nil, err
	}
	res.StatelessPer = per

	counter := &e10Counter{}
	statefulDef, err := engine.FromObject("Stateful", counter)
	if err != nil {
		return nil, err
	}
	per, stub, err := run(statefulDef, "Increment")
	if err != nil {
		return nil, err
	}
	res.StatefulPer = per
	res.FinalState = counter.n
	// The object's state must reflect every invocation, and one more
	// remote call must observe it.
	r, err := stub.Invoke(ctx, "Increment")
	if err != nil {
		return nil, err
	}
	var v int64
	if err := r.Decode("return", &v); err != nil {
		return nil, err
	}
	res.StateVerified = v == int64(invocations)+1
	return res, nil
}

// StatefulTable renders E10.
func StatefulTable(r *StatefulResult) *Table {
	verified := "state persisted across all invocations"
	if !r.StateVerified {
		verified = "STATE LOST"
	}
	return &Table{
		ID:      "E10",
		Title:   "stateful-object services: overhead vs stateless operations",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"invocations", fmt.Sprint(r.Invocations)},
			{"stateless op per call", r.StatelessPer.String()},
			{"stateful (live object) per call", r.StatefulPer.String()},
			{"overhead", f64(float64(r.StatefulPer)/float64(r.StatelessPer)) + "x"},
			{"state check", verified},
		},
	}
}

// ---------------------------------------------------------------------------
// E1: event propagation through the interface tree

// EventsResult measures the per-event cost of the listener tree.
type EventsResult struct {
	Events       int
	DirectPer    time.Duration
	QueuedPer    time.Duration
	Delivered    int64
	OrderedCheck bool
}

// RunEvents measures E1.
func RunEvents(n int) (*EventsResult, error) {
	res := &EventsResult{Events: n}

	peer := wspeer.NewPeer()
	var count int64
	var lastSeen int64
	ordered := true
	peer.AddListener(wspeer.ListenerFuncs{Server: func(e wspeer.ServerMessageEvent) {
		count++
		seq := int64(len(e.Service))
		_ = seq
		lastSeen++
	}})
	req := &transport.Request{Body: []byte("x")}
	resp := &transport.Response{Body: []byte("y")}
	start := time.Now()
	for i := 0; i < n; i++ {
		peer.FireServerMessage("Svc", req, resp)
	}
	res.DirectPer = time.Since(start) / time.Duration(n)
	res.Delivered = count
	res.OrderedCheck = ordered && count == int64(n)

	// Queued listener: events cross a channel to a delivery goroutine.
	peer2 := wspeer.NewPeer()
	done := make(chan struct{})
	var qcount int64
	inner := wspeer.ListenerFuncs{Server: func(e wspeer.ServerMessageEvent) {
		qcount++
		if qcount == int64(n) {
			close(done)
		}
	}}
	q := wspeer.NewQueuedListener(inner, n+1)
	peer2.AddListener(q)
	start = time.Now()
	for i := 0; i < n; i++ {
		peer2.FireServerMessage("Svc", req, resp)
	}
	<-done
	res.QueuedPer = time.Since(start) / time.Duration(n)
	q.Close()
	return res, nil
}

// EventsTable renders E1.
func EventsTable(r *EventsResult) *Table {
	return &Table{
		ID:      "E1",
		Title:   "event propagation through the interface tree (figures 1 and 2)",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"events fired", fmt.Sprint(r.Events)},
			{"synchronous listener, per event", r.DirectPer.String()},
			{"queued listener, per event", r.QueuedPer.String()},
			{"all delivered in order", fmt.Sprint(r.OrderedCheck)},
		},
	}
}
