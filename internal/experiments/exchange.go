package experiments

// The exchange-pattern experiment (E13) measures the three message
// exchange patterns of DESIGN.md §15 in calls per second over the
// in-memory substrate: plain request/response on the back channel,
// one-way fire-and-forget, and callback with the reply delivered as a
// separate message and correlated through the bounded table. The spread
// between the three is the price of correlation, not of the wire — the
// substrate is identical in all rows.

import (
	"context"
	"fmt"
	"testing"

	"wspeer"
)

// RunExchangePatterns measures request/response, one-way and callback
// throughput against one in-memory echo service.
func RunExchangePatterns() ([]ThroughputResult, error) {
	net := wspeer.NewInMemNetwork()
	dir := wspeer.NewInMemDirectory()
	ctx := context.Background()

	provider := wspeer.NewPeer()
	pb, err := wspeer.NewInMemBinding(wspeer.InMemOptions{Network: net, Directory: dir})
	if err != nil {
		return nil, err
	}
	defer pb.Close()
	if err := provider.AttachBinding(pb); err != nil {
		return nil, err
	}
	def := wspeer.ServiceDef{
		Name: "ExchangeEcho",
		Operations: []wspeer.OperationDef{
			{Name: "echo", Func: func(s string) string { return s }, ParamNames: []string{"msg"}},
			{Name: "notify", Func: func(s string) error { return nil }, ParamNames: []string{"msg"}, OneWay: true},
		},
	}
	if _, err := provider.Server().DeployAndPublish(ctx, def); err != nil {
		return nil, err
	}

	consumer := wspeer.NewPeer()
	cb, err := wspeer.NewInMemBinding(wspeer.InMemOptions{Network: net, Directory: dir})
	if err != nil {
		return nil, err
	}
	defer cb.Close()
	if err := consumer.AttachBinding(cb); err != nil {
		return nil, err
	}
	defer consumer.Client().CloseExchange()
	info, err := consumer.Client().LocateOne(ctx, wspeer.NameQuery{Name: "ExchangeEcho"})
	if err != nil {
		return nil, err
	}
	inv, err := consumer.Client().NewInvocation(info)
	if err != nil {
		return nil, err
	}

	var out []ThroughputResult
	var runErr error

	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := inv.Invoke(ctx, "echo", wspeer.P("msg", "x")); err != nil {
				runErr = fmt.Errorf("request/response: %w", err)
				b.FailNow()
			}
		}
	})
	if runErr != nil {
		return nil, runErr
	}
	out = append(out, toThroughput("ExchangeRequestResponse", 1, r))

	r = testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := inv.InvokeOneWay(ctx, "notify", wspeer.P("msg", "x")); err != nil {
				runErr = fmt.Errorf("one-way: %w", err)
				b.FailNow()
			}
		}
	})
	if runErr != nil {
		return nil, runErr
	}
	out = append(out, toThroughput("ExchangeOneWay", 1, r))

	r = testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pending, err := inv.InvokeCallback(ctx, "echo", wspeer.P("msg", "x"))
			if err != nil {
				runErr = fmt.Errorf("callback send: %w", err)
				b.FailNow()
			}
			if _, err := pending.Wait(ctx); err != nil {
				runErr = fmt.Errorf("callback reply: %w", err)
				b.FailNow()
			}
		}
	})
	if runErr != nil {
		return nil, runErr
	}
	out = append(out, toThroughput("ExchangeCallback", 1, r))

	stats := consumer.Client().ExchangeStats()
	if stats.Expired > 0 || stats.Orphans > 0 {
		return nil, fmt.Errorf("exchange table unhealthy after run: %+v", stats)
	}
	return out, nil
}

// ExchangePatternsTable renders the E13 measurements.
func ExchangePatternsTable(rs []ThroughputResult) *Table {
	t := &Table{
		ID:      "E13",
		Title:   "message exchange patterns: request/response vs one-way vs callback (in-memory substrate)",
		Columns: []string{"pattern", "calls/op", "ns/op", "calls/sec"},
		Notes: []string{
			"callback rows include reply correlation through the bounded table",
			"measured in-process via testing.Benchmark",
		},
	}
	for _, r := range rs {
		t.Rows = append(t.Rows, []string{
			r.Name,
			fmt.Sprintf("%d", r.CallsPerOp),
			fmt.Sprintf("%.0f", r.NsPerOp),
			fmt.Sprintf("%.0f", r.CallsPerSec),
		})
	}
	return t
}
