package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"wspeer"
	"wspeer/internal/engine"
	"wspeer/internal/httpd"
	"wspeer/internal/p2ps"
)

// LifecycleResult times the four phases of Fig. 3/Fig. 4 plus invocation
// throughput at several concurrency levels.
type LifecycleResult struct {
	Binding    string
	Deploy     time.Duration
	Publish    time.Duration
	Locate     time.Duration
	Invoke     time.Duration // single synchronous invocation
	Throughput map[int]float64
}

func lifecycleEcho() wspeer.ServiceDef {
	return wspeer.ServiceDef{
		Name: "Echo",
		Operations: []wspeer.OperationDef{{
			Name:       "echo",
			Func:       func(s string) string { return s },
			ParamNames: []string{"msg"},
		}},
	}
}

// RunHTTPLifecycle measures E2: the standard implementation's
// deploy→publish→locate→invoke over real HTTP and a real registry node.
func RunHTTPLifecycle(concurrency []int, invokesPerLevel int) (*LifecycleResult, error) {
	ctx := context.Background()
	registryHost := httpd.New(engine.New(), httpd.Options{})
	defer registryHost.Close()
	registryURL, err := registryHost.Deploy(wspeer.UDDIServiceDef(wspeer.NewUDDIRegistry()))
	if err != nil {
		return nil, err
	}

	provider := wspeer.NewPeer()
	pb, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{UDDIEndpoint: registryURL})
	if err != nil {
		return nil, err
	}
	defer pb.Close()
	pb.Attach(provider)

	consumer := wspeer.NewPeer()
	cb, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{UDDIEndpoint: registryURL})
	if err != nil {
		return nil, err
	}
	defer cb.Close()
	cb.Attach(consumer)

	res := &LifecycleResult{Binding: "http/uddi", Throughput: map[int]float64{}}

	start := time.Now()
	dep, err := provider.Server().Deploy(lifecycleEcho())
	if err != nil {
		return nil, err
	}
	res.Deploy = time.Since(start)

	start = time.Now()
	if err := provider.Server().Publish(ctx, dep); err != nil {
		return nil, err
	}
	res.Publish = time.Since(start)

	start = time.Now()
	info, err := consumer.Client().LocateOne(ctx, wspeer.NameQuery{Name: "Echo"})
	if err != nil {
		return nil, err
	}
	res.Locate = time.Since(start)

	inv, err := consumer.Client().NewInvocation(info)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	if _, err := inv.Invoke(ctx, "echo", wspeer.P("msg", "x")); err != nil {
		return nil, err
	}
	res.Invoke = time.Since(start)

	for _, c := range concurrency {
		tput, err := measureThroughput(ctx, consumer, info, c, invokesPerLevel)
		if err != nil {
			return nil, err
		}
		res.Throughput[c] = tput
	}
	return res, nil
}

// RunP2PSLifecycle measures E3: the same four phases over the P2PS
// binding on an in-process overlay.
func RunP2PSLifecycle(concurrency []int, invokesPerLevel int) (*LifecycleResult, error) {
	ctx := context.Background()
	overlay := p2ps.NewLocalNetwork()
	rdv, err := p2ps.NewPeer(p2ps.Config{Transport: overlay.NewEndpoint(), Rendezvous: true})
	if err != nil {
		return nil, err
	}
	defer rdv.Close()

	mk := func() (*wspeer.Peer, func(), error) {
		node, err := p2ps.NewPeer(p2ps.Config{Transport: overlay.NewEndpoint(), Seeds: []string{rdv.Addr()}})
		if err != nil {
			return nil, nil, err
		}
		b, err := wspeer.NewP2PSBinding(wspeer.P2PSOptions{Peer: node, DiscoveryTimeout: 250 * time.Millisecond})
		if err != nil {
			node.Close()
			return nil, nil, err
		}
		p := wspeer.NewPeer()
		b.Attach(p)
		return p, func() { node.Close() }, nil
	}
	provider, closeProv, err := mk()
	if err != nil {
		return nil, err
	}
	defer closeProv()
	consumer, closeCons, err := mk()
	if err != nil {
		return nil, err
	}
	defer closeCons()

	res := &LifecycleResult{Binding: "p2ps", Throughput: map[int]float64{}}

	start := time.Now()
	dep, err := provider.Server().Deploy(lifecycleEcho())
	if err != nil {
		return nil, err
	}
	res.Deploy = time.Since(start)

	start = time.Now()
	if err := provider.Server().Publish(ctx, dep); err != nil {
		return nil, err
	}
	res.Publish = time.Since(start)

	// Locate with retry: advert propagation is asynchronous.
	start = time.Now()
	var info *wspeer.ServiceInfo
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		info, err = consumer.Client().LocateOne(ctx, wspeer.NameQuery{Name: "Echo"})
		if err == nil {
			break
		}
	}
	if info == nil {
		return nil, fmt.Errorf("p2ps locate never succeeded: %v", err)
	}
	res.Locate = time.Since(start)

	inv, err := consumer.Client().NewInvocation(info)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	if _, err := inv.Invoke(ctx, "echo", wspeer.P("msg", "x")); err != nil {
		return nil, err
	}
	res.Invoke = time.Since(start)

	for _, c := range concurrency {
		tput, err := measureThroughput(ctx, consumer, info, c, invokesPerLevel)
		if err != nil {
			return nil, err
		}
		res.Throughput[c] = tput
	}
	return res, nil
}

// measureThroughput runs total invocations across c workers and returns
// invocations per second.
func measureThroughput(ctx context.Context, consumer *wspeer.Peer, info *wspeer.ServiceInfo, c, total int) (float64, error) {
	inv, err := consumer.Client().NewInvocation(info)
	if err != nil {
		return 0, err
	}
	var wg sync.WaitGroup
	errCh := make(chan error, c)
	per := total / c
	if per == 0 {
		per = 1
	}
	start := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := inv.Invoke(ctx, "echo", wspeer.P("msg", "x")); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	return float64(c*per) / elapsed.Seconds(), nil
}

// LifecycleTable renders E2/E3.
func LifecycleTable(id string, results ...*LifecycleResult) *Table {
	t := &Table{
		ID:      id,
		Title:   "service lifecycle: deploy → publish → locate → invoke (figures 3 and 4)",
		Columns: []string{"binding", "deploy", "publish", "locate", "invoke(1)"},
	}
	concs := map[int]bool{}
	for _, r := range results {
		for c := range r.Throughput {
			concs[c] = true
		}
	}
	var levels []int
	for c := range concs {
		levels = append(levels, c)
	}
	for i := 0; i < len(levels); i++ {
		for j := i + 1; j < len(levels); j++ {
			if levels[j] < levels[i] {
				levels[i], levels[j] = levels[j], levels[i]
			}
		}
	}
	for _, c := range levels {
		t.Columns = append(t.Columns, fmt.Sprintf("inv/s @%d", c))
	}
	for _, r := range results {
		row := []string{
			r.Binding,
			r.Deploy.Round(time.Microsecond).String(),
			r.Publish.Round(time.Microsecond).String(),
			r.Locate.Round(time.Microsecond).String(),
			r.Invoke.Round(time.Microsecond).String(),
		}
		for _, c := range levels {
			row = append(row, f64(r.Throughput[c]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
