package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"wspeer/internal/netsim"
	"wspeer/internal/p2ps"
)

// DiscoveryMode selects the discovery architecture under test.
type DiscoveryMode string

// The three architectures compared by E5/E6.
const (
	// ModeCentral is a single directory node every peer publishes to and
	// queries — the UDDI-shaped architecture whose "number of server
	// entities does not grow proportionately with the overall number of
	// nodes" (paper §II).
	ModeCentral DiscoveryMode = "central"
	// ModeMesh is a rendezvous mesh with advert caching: P2PS's default.
	ModeMesh DiscoveryMode = "p2ps-mesh"
	// ModeFlood is the cache-off ablation: rendezvous flood queries to
	// attached peers, which answer from their local adverts.
	ModeFlood DiscoveryMode = "p2ps-flood"
)

// Overlay is a simulated P2PS network built for an experiment.
type Overlay struct {
	Sim       *netsim.Simulator
	Rdvs      []*p2ps.Peer
	Providers []*p2ps.Peer
	rng       *rand.Rand
}

// OverlayConfig sizes an overlay.
type OverlayConfig struct {
	Seed       int64
	Providers  int // edge peers, each publishing one unique service
	Rendezvous int // 1 = centralized directory
	Mode       DiscoveryMode
	QueryTTL   int
	// Homes is how many rendezvous each edge peer attaches to (default
	// 1). Multi-homing is the P2P resilience mechanism: adverts and
	// queries survive the loss of any single home rendezvous.
	Homes int
}

// ServiceName returns the service the i'th provider publishes.
func ServiceName(i int) string { return fmt.Sprintf("Svc-%04d", i) }

// BuildOverlay constructs the overlay, publishes every provider's service
// and settles the network.
func BuildOverlay(cfg OverlayConfig) (*Overlay, error) {
	if cfg.Rendezvous < 1 {
		cfg.Rendezvous = 1
	}
	if cfg.QueryTTL <= 0 {
		cfg.QueryTTL = 7
	}
	sim := netsim.New(cfg.Seed)
	sim.SetDefaultLink(netsim.Link{Latency: 10 * time.Millisecond, Jitter: 2 * time.Millisecond})
	o := &Overlay{Sim: sim, rng: rand.New(rand.NewSource(cfg.Seed + 1))}

	// Rendezvous mesh: each rendezvous is seeded with all previous ones.
	// In mesh mode the directory is replicated across the rendezvous, so
	// queries are answered at their entry rendezvous (TTL 1); flood mode
	// must propagate to reach the providers themselves.
	queryTTL := cfg.QueryTTL
	if cfg.Mode == ModeMesh {
		queryTTL = 1
	}
	var rdvAddrs []string
	for i := 0; i < cfg.Rendezvous; i++ {
		ep, err := sim.NewEndpoint(fmt.Sprintf("rdv-%03d", i))
		if err != nil {
			return nil, err
		}
		peer, err := p2ps.NewPeer(p2ps.Config{
			Name:             fmt.Sprintf("rdv-%03d", i),
			Rendezvous:       true,
			Transport:        ep,
			Clock:            sim,
			QueryTTL:         queryTTL,
			DisableCache:     cfg.Mode == ModeFlood,
			ReplicateAdverts: cfg.Mode == ModeMesh,
			Seeds:            append([]string(nil), rdvAddrs...),
		})
		if err != nil {
			return nil, err
		}
		o.Rdvs = append(o.Rdvs, peer)
		rdvAddrs = append(rdvAddrs, peer.Addr())
		sim.Run(0)
	}

	homes := cfg.Homes
	if homes < 1 {
		homes = 1
	}
	if homes > len(o.Rdvs) {
		homes = len(o.Rdvs)
	}

	// Providers: attached round-robin (to `homes` distinct rendezvous),
	// each publishing one service.
	for i := 0; i < cfg.Providers; i++ {
		ep, err := sim.NewEndpoint(fmt.Sprintf("peer-%05d", i))
		if err != nil {
			return nil, err
		}
		seeds := make([]string, 0, homes)
		for h := 0; h < homes; h++ {
			seeds = append(seeds, o.Rdvs[(i+h)%len(o.Rdvs)].Addr())
		}
		peer, err := p2ps.NewPeer(p2ps.Config{
			Name:      fmt.Sprintf("peer-%05d", i),
			Transport: ep,
			Clock:     sim,
			QueryTTL:  queryTTL,
			Seeds:     seeds,
		})
		if err != nil {
			return nil, err
		}
		if _, err := peer.PublishService(&p2ps.ServiceAdvertisement{Name: ServiceName(i)}); err != nil {
			return nil, err
		}
		o.Providers = append(o.Providers, peer)
	}
	sim.Run(0)
	return o, nil
}

// RunQueries issues n queries from random providers for random services
// and reports how many succeeded, plus the mean hop count of successful
// matches. survivors filters which providers' services are considered
// reachable targets and which peers may issue queries (nil = all).
func (o *Overlay) RunQueries(n int, survivors map[int]bool) (succeeded int, meanHops float64) {
	var hopTotal float64
	var hopCount int
	alive := make([]int, 0, len(o.Providers))
	for i := range o.Providers {
		if survivors == nil || survivors[i] {
			alive = append(alive, i)
		}
	}
	if len(alive) < 2 {
		return 0, 0
	}
	for q := 0; q < n; q++ {
		from := alive[o.rng.Intn(len(alive))]
		target := alive[o.rng.Intn(len(alive))]
		d := o.Providers[from].Discover(p2ps.Query{Name: ServiceName(target)}, 2*time.Second)
		o.Sim.Run(0)
		if len(d.Matches()) > 0 {
			succeeded++
			hopTotal += d.MeanHops()
			hopCount++
		}
	}
	if hopCount > 0 {
		meanHops = hopTotal / float64(hopCount)
	}
	return succeeded, meanHops
}

// DiscoveryScalingRow is one E5 measurement.
type DiscoveryScalingRow struct {
	Mode       DiscoveryMode
	Peers      int
	Rendezvous int
	Queries    int
	Success    float64
	HottestΔ   int64
	TotalΔ     int64
	PerQuery   float64
	MeanHops   float64
}

// RunDiscoveryScaling measures E5. The workload scales with the network:
// every provider issues one query, so a network of n peers carries n
// queries. The expected shape is the paper's §II claim: the centralized
// directory's per-node load grows linearly with the network size (every
// query lands on the one registry), while the rendezvous mesh — whose
// "server entities" grow with the network — keeps per-node load roughly
// flat, at the price of more total messages.
func RunDiscoveryScaling(seed int64, sizes []int) ([]DiscoveryScalingRow, error) {
	var rows []DiscoveryScalingRow
	for _, n := range sizes {
		queries := n // workload proportional to network size
		for _, mode := range []DiscoveryMode{ModeCentral, ModeMesh, ModeFlood} {
			rdvs := 1
			if mode != ModeCentral {
				rdvs = n / 16
				if rdvs < 2 {
					rdvs = 2
				}
			}
			o, err := BuildOverlay(OverlayConfig{Seed: seed, Providers: n, Rendezvous: rdvs, Mode: mode})
			if err != nil {
				return nil, err
			}
			before := o.Sim.ReceivedSnapshot()
			statsBefore := o.Sim.Stats()
			ok, hops := o.RunQueries(queries, nil)
			after := o.Sim.ReceivedSnapshot()
			statsAfter := o.Sim.Stats()

			var hottest int64
			for name, c := range after {
				if d := c - before[name]; d > hottest {
					hottest = d
				}
			}
			total := statsAfter.Sent - statsBefore.Sent
			rows = append(rows, DiscoveryScalingRow{
				Mode:       mode,
				Peers:      n,
				Rendezvous: rdvs,
				Queries:    queries,
				Success:    float64(ok) / float64(queries),
				HottestΔ:   hottest,
				TotalΔ:     total,
				PerQuery:   float64(total) / float64(queries),
				MeanHops:   hops,
			})
		}
	}
	return rows, nil
}

// DiscoveryScalingTable renders E5.
func DiscoveryScalingTable(rows []DiscoveryScalingRow) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "discovery scaling: centralized directory vs P2PS rendezvous mesh (netsim, queries = peers)",
		Columns: []string{"mode", "peers", "rdvs", "queries", "success", "hottest-node msgs", "total msgs", "msgs/query", "mean hops"},
		Notes: []string{
			"hottest-node msgs = messages absorbed by the busiest node during the query phase",
			"shape check: central hottest-node load grows linearly with peers; mesh per-node load stays roughly flat",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			string(r.Mode), fmt.Sprint(r.Peers), fmt.Sprint(r.Rendezvous), fmt.Sprint(r.Queries), fpct(r.Success),
			fmt.Sprint(r.HottestΔ), fmt.Sprint(r.TotalΔ), f64(r.PerQuery), f64(r.MeanHops),
		})
	}
	return t
}

// ChurnRow is one E6 measurement.
type ChurnRow struct {
	Mode     DiscoveryMode
	Peers    int
	KillFrac float64
	Success  float64
}

// RunChurn measures E6: discovery success under node failure. A fraction
// of nodes — rendezvous included — is killed after publication; queries
// then run between surviving providers. The paper's claim is that P2P
// topologies "are scalable and robust in the face of node failure" while
// centralized discovery is not: killing the single directory should
// collapse the central architecture while the mesh and flood modes
// degrade gracefully.
func RunChurn(seed int64, peers int, fracs []float64, queries, reps int) ([]ChurnRow, error) {
	if reps < 1 {
		reps = 1
	}
	var rows []ChurnRow
	for _, mode := range []DiscoveryMode{ModeCentral, ModeMesh, ModeFlood} {
		for _, f := range fracs {
			rdvs := 1
			if mode != ModeCentral {
				rdvs = peers / 16
				if rdvs < 2 {
					rdvs = 2
				}
			}
			var successSum float64
			for rep := 0; rep < reps; rep++ {
				repSeed := seed + int64(rep)*7919
				// P2P modes multi-home each peer on two rendezvous —
				// the overlay's actual resilience mechanism; the
				// centralized architecture has nothing to multi-home to.
				o, err := BuildOverlay(OverlayConfig{
					Seed: repSeed, Providers: peers, Rendezvous: rdvs,
					Mode: mode, Homes: 2,
				})
				if err != nil {
					return nil, err
				}
				rng := rand.New(rand.NewSource(repSeed + int64(f*1000)))

				// Kill a fraction of all nodes (rendezvous and providers
				// alike), then query among survivors.
				nodes := len(o.Rdvs) + len(o.Providers)
				kill := int(f * float64(nodes))
				perm := rng.Perm(nodes)
				survivors := make(map[int]bool, len(o.Providers))
				for i := range o.Providers {
					survivors[i] = true
				}
				for _, idx := range perm[:kill] {
					if idx < len(o.Rdvs) {
						o.Rdvs[idx].Close()
					} else {
						p := idx - len(o.Rdvs)
						o.Providers[p].Close()
						delete(survivors, p)
					}
				}
				ok, _ := o.RunQueries(queries, survivors)
				successSum += float64(ok) / float64(queries)
			}
			rows = append(rows, ChurnRow{
				Mode: mode, Peers: peers, KillFrac: f,
				Success: successSum / float64(reps),
			})
		}
	}
	return rows, nil
}

// ChurnTable renders E6.
func ChurnTable(rows []ChurnRow) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "resilience to node failure: discovery success after killing a fraction of nodes (netsim)",
		Columns: []string{"mode", "peers", "killed", "discovery success"},
		Notes: []string{
			"queries run only between surviving providers, so failures measure lost infrastructure, not lost targets",
			"P2P peers are multi-homed on two rendezvous (their resilience mechanism); the central mode has one directory",
			"shape check: central is a coin flip on the directory's survival; the replicated mesh degrades gracefully",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			string(r.Mode), fmt.Sprint(r.Peers), fpct(r.KillFrac), fpct(r.Success),
		})
	}
	return t
}
