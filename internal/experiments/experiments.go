// Package experiments implements the reproduction experiments indexed in
// DESIGN.md (E1-E10). The WSPeer paper contains no quantitative tables —
// its figures are architecture and process diagrams — so the evaluation
// reproduced here is (a) each depicted process run end to end and measured,
// and (b) the paper's qualitative performance claims (centralized
// discovery bottlenecks vs. P2P scaling, resilience to node failure,
// asynchronous invocation, byte-level stub generation, container-less lazy
// hosting) turned into measured experiments whose *shape* must hold.
//
// Both cmd/benchharness and the repository's testing.B benchmarks drive
// the functions in this package, so printed tables and benchmark numbers
// come from the same workload code.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Print renders the table.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// f64 formats a float compactly.
func f64(v float64) string { return fmt.Sprintf("%.2f", v) }

// fpct formats a ratio as a percentage.
func fpct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
