# WSPeer build targets. Everything is stdlib-only Go; these are
# conveniences, not requirements. `make check` is the pre-commit gate:
# it vets and runs the full test suite under the race detector.

GO ?= go
BENCH_BASELINE ?= bench_baseline.json

.PHONY: all help build vet test race bench bench-baseline bench-compare bench-throughput harness chaos examples loc clean check

all: build vet test

help:
	@echo "WSPeer make targets:"
	@echo "  check            vet + full test suite under -race (the pre-commit gate)"
	@echo "  build/vet/test   the individual pieces of 'all'"
	@echo "  bench            run every Go benchmark with -benchmem"
	@echo "  bench-baseline   regenerate $(BENCH_BASELINE) (experiments A3+A4)."
	@echo "                   The baseline is machine-specific: regenerate it on the"
	@echo "                   machine that will run bench-compare, and regenerate it"
	@echo "                   whenever an intentional perf change moves ns/op or"
	@echo "                   allocs/op — allocs in particular are exact, so a stale"
	@echo "                   baseline fails bench-compare on a one-alloc drift."
	@echo "  bench-compare    re-measure and fail on >20% regression vs the baseline"
	@echo "  bench-throughput throughput experiments (A4) in calls/sec"
	@echo "  harness          regenerate every experiment table (E1-E10, A1-A4, R1, R2)"
	@echo "  chaos            the deterministic chaos suite under -race"
	@echo "  examples         run every example program once"
	@echo "  loc              count lines of Go"

# The pre-commit gate: static analysis plus the racy test suite.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One testing.B benchmark per experiment (see DESIGN.md §5).
bench:
	$(GO) test -bench . -benchmem ./...

# Capture the invocation fast-path and throughput measurements as the
# comparison baseline (calls/sec rides along in the JSON).
bench-baseline:
	$(GO) run ./cmd/benchharness -experiments A3,A4 -benchjson $(BENCH_BASELINE)

# Re-measure and fail loudly on a >20% ns/op or allocs/op regression
# against the saved baseline.
bench-compare:
	$(GO) run ./cmd/benchharness -experiments A3 -bench-compare $(BENCH_BASELINE)

# Throughput experiments (A4): cached vs uncached resolution and the
# scatter-gather burst, in calls per second.
bench-throughput:
	$(GO) run ./cmd/benchharness -experiments A4

# Regenerate every experiment table (E1-E10, A1-A4, R1, R2).
harness:
	$(GO) run ./cmd/benchharness

# The deterministic chaos suite (DESIGN.md §10, §14): seeded fault
# injection on a real HTTP invoke path with breaker+failover, resilience
# state-machine tests, server overload shedding, retry-budget storms,
# deadline propagation and hedged invocations — all under the race
# detector. The seeds are fixed in the tests; every run reproduces the
# same fault schedule bit for bit.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Overload|Breaker|Admission|Injector|Hedge|Budget|Deadline|Exchange|Callback|OneWay|Table|Future' . ./internal/resilience/ ./internal/httpd/ ./internal/core/ ./internal/pipeline/ ./internal/exchange/

# Run every example program once.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/workflow
	$(GO) run ./examples/cactusmon
	$(GO) run ./examples/catnets
	$(GO) run ./examples/simulation -peers 300 -queries 50
	$(GO) run ./examples/observability

loc:
	@find . -name '*.go' | xargs wc -l | tail -1

clean:
	$(GO) clean ./...
