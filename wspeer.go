// Package wspeer is a Go implementation of WSPeer, "an interface to Web
// service hosting and invocation" (Harrison & Taylor, IPPS 2005).
//
// WSPeer sits between an application and the network, letting the
// application act as a service-oriented peer — hosting, publishing,
// discovering and invoking SOAP/WSDL services — over interchangeable
// substrates. Two bindings ship with this implementation:
//
//   - the standard binding (NewHTTPBinding): container-less HTTP hosting,
//     UDDI-style registry publication and discovery, HTTP/HTTPG invocation;
//
//   - the P2PS binding (NewP2PSBinding): services exposed as unidirectional
//     pipes on a peer-to-peer overlay, advertised with XML adverts carrying
//     a WSDL "definition pipe", discovered by in-network queries, and made
//     request/response-capable through WS-Addressing ReplyTo headers.
//
//   - the in-memory binding (NewInMemBinding): services hosted on a
//     process-local network and published to a shared in-process
//     directory — the deterministic substrate for tests and simulations.
//
// Every binding implements the same Binding contract (Attach/Detach/Use/
// Close) and attaches with Peer.AttachBinding; a BindingRegistry keys live
// bindings by name and endpoint scheme, and ComposeClient builds a peer
// from explicitly mixed components (e.g. the UDDI locator with the P2PS
// invoker). Application code works exclusively with this package's types;
// swapping or mixing bindings does not change it. See the examples/
// directory for runnable programs and DESIGN.md for the architecture.
//
// Invocation and dispatch run on a zero-allocation fast path: WSDL
// operation details are memoized per Definitions, XSD encode/decode plans
// are compiled once per Go type, envelopes render through pooled XML
// writers, and the HTTP transports share a tuned keep-alive connection
// pool. See DESIGN.md ("The invocation fast path") for the invariants.
//
// # Quick start
//
//	peer := wspeer.NewPeer()
//	binding, _ := wspeer.NewHTTPBinding(wspeer.HTTPOptions{UDDIEndpoint: registryURL})
//	peer.AttachBinding(binding)
//
//	// Host: the application is its own container.
//	dep, _ := peer.Server().DeployAndPublish(ctx, wspeer.ServiceDef{
//		Name: "Echo",
//		Operations: []wspeer.OperationDef{{
//			Name: "echo", Func: func(s string) string { return s },
//		}},
//	})
//
//	// Consume: locate anywhere, invoke anything.
//	info, _ := peer.Client().LocateOne(ctx, wspeer.NameQuery{Name: "Echo"})
//	inv, _ := peer.Client().NewInvocation(info)
//	res, _ := inv.Invoke(ctx, "echo", wspeer.P("in0", "hello"))
package wspeer

import (
	"io"
	"time"

	"wspeer/internal/binding"
	"wspeer/internal/binding/httpbind"
	"wspeer/internal/binding/inmembind"
	"wspeer/internal/binding/p2psbind"
	"wspeer/internal/core"
	"wspeer/internal/engine"
	"wspeer/internal/exchange"
	"wspeer/internal/flow"
	"wspeer/internal/httpd"
	"wspeer/internal/p2ps"
	"wspeer/internal/pipeline"
	"wspeer/internal/resilience"
	"wspeer/internal/resolve"
	"wspeer/internal/soap"
	"wspeer/internal/telemetry"
	"wspeer/internal/transport"
	"wspeer/internal/uddi"
	"wspeer/internal/wsaddr"
	"wspeer/internal/wsdl"
)

// The interface tree (paper Fig. 2).
type (
	// Peer is the root of the interface tree.
	Peer = core.Peer
	// Client is the consumer side of a peer.
	Client = core.Client
	// Server is the provider side of a peer.
	Server = core.Server
	// Invocation is a client-side handle on one located service.
	Invocation = core.Invocation
)

// Queries, results and component descriptions.
type (
	// ServiceQuery abstracts over binding-specific queries.
	ServiceQuery = core.ServiceQuery
	// NameQuery queries on a service name (and optional attributes).
	NameQuery = core.NameQuery
	// ExprQuery queries with a rich predicate expression, e.g.
	// "name like 'Echo*' and attr(kind) = 'echo'" (see internal/query).
	ExprQuery = core.ExprQuery
	// UDDIQuery adds UDDI category constraints (standard binding).
	UDDIQuery = httpbind.UDDIQuery
	// ServiceInfo describes a located service.
	ServiceInfo = core.ServiceInfo
	// Deployment describes a hosted service.
	Deployment = core.Deployment
	// P2PSURI is WSPeer's p2ps://peer/service#pipe endpoint reference.
	P2PSURI = core.P2PSURI
)

// Pluggable component interfaces.
type (
	// ServiceLocator finds services.
	ServiceLocator = core.ServiceLocator
	// ServicePublisher makes deployments discoverable.
	ServicePublisher = core.ServicePublisher
	// ServiceDeployer exposes service definitions at endpoints.
	ServiceDeployer = core.ServiceDeployer
	// Invoker carries invocations to located services.
	Invoker = core.Invoker
)

// Events (paper §III: the PeerMessageListener interface).
type (
	// PeerMessageListener receives all five event classes.
	PeerMessageListener = core.PeerMessageListener
	// ListenerFuncs adapts callbacks to PeerMessageListener.
	ListenerFuncs = core.ListenerFuncs
	// QueuedListener decouples slow listeners from protocol goroutines.
	QueuedListener = core.QueuedListener
	// DiscoveryEvent reports discovery progress.
	DiscoveryEvent = core.DiscoveryEvent
	// PublishEvent reports publications.
	PublishEvent = core.PublishEvent
	// ClientMessageEvent reports client-side exchanges.
	ClientMessageEvent = core.ClientMessageEvent
	// ServerMessageEvent reports raw server-side exchanges.
	ServerMessageEvent = core.ServerMessageEvent
	// DeploymentMessageEvent reports (un)deployments.
	DeploymentMessageEvent = core.DeploymentMessageEvent
	// HealthEvent reports endpoint health-state transitions (circuit
	// breakers moving between closed, open and half-open).
	HealthEvent = core.HealthEvent
)

// The unified call pipeline (see DESIGN.md "Call pipeline"): interceptors
// wrap client invocations (Client.Use) and server dispatch (the bindings'
// Use methods) around the same Call carrier.
type (
	// PipelineCall is the carrier one call's state travels in through an
	// interceptor chain.
	PipelineCall = pipeline.Call
	// CallFunc is the continuation an interceptor wraps.
	CallFunc = pipeline.CallFunc
	// CallInterceptor decorates a CallFunc with cross-cutting behaviour.
	CallInterceptor = pipeline.Interceptor
	// CallDirection distinguishes client calls from server dispatches.
	CallDirection = pipeline.Direction
	// RetryOptions tunes the Retry interceptor.
	RetryOptions = pipeline.RetryOptions
	// CallStats aggregates per-service call counts and latency.
	//
	// Deprecated: a thin adapter over the telemetry spine's call table;
	// read Snapshot() instead of installing a CallStats interceptor.
	CallStats = pipeline.CallStats
	// ServiceSnapshot is one service's aggregated statistics.
	ServiceSnapshot = pipeline.ServiceSnapshot
)

// The telemetry spine (DESIGN.md §12): every layer — pipeline
// interceptors, engine dispatch, core invocation and events, transports,
// hosts and the resilience layer — records into one process-wide hub of
// spans, counters, gauges, histograms and a per-service call table.
type (
	// TelemetryHub bundles the spine's tracer, meter and call table.
	TelemetryHub = telemetry.Hub
	// TelemetrySnapshot is a point-in-time copy of every instrument.
	TelemetrySnapshot = telemetry.Snapshot
	// TelemetrySink receives ended spans (attach with Telemetry().Tracer.SetSink).
	TelemetrySink = telemetry.Sink
	// Span is one timed operation: a client invocation or a server
	// dispatch, linked to its trace across the wire.
	Span = telemetry.Span
	// SpanData is an ended span as delivered to a sink.
	SpanData = telemetry.SpanData
	// SpanCollector is a bounded in-memory sink for tests and debugging.
	SpanCollector = telemetry.Collector
	// CallSnapshot is one service+direction row of the spine's call table.
	CallSnapshot = telemetry.CallSnapshot
	// SpanRing is a bounded ring of ended spans backing the Chrome trace
	// export; attach one with EnableTracing.
	SpanRing = telemetry.SpanRing
	// FlightRecord is one completed call retained by the flight recorder.
	FlightRecord = telemetry.CallRecord
	// FlightRecorder is the always-on, tail-sampled ring of completed
	// calls at Telemetry().Flight.
	FlightRecorder = telemetry.Recorder
	// FlightFilter selects flight records in FlightRecorder.Query.
	FlightFilter = telemetry.RecordFilter
	// FlightStats is the recorder's sampling counters.
	FlightStats = telemetry.RecorderStats
	// Logger is the spine's structured, leveled logger at Telemetry().Log.
	Logger = telemetry.Logger
	// LogEntry is one structured log line.
	LogEntry = telemetry.LogEntry
	// LogLevel orders log severities.
	LogLevel = telemetry.Level
	// LogSink receives emitted log entries (attach with Logger.SetSink).
	LogSink = telemetry.LogSink
)

// Log levels for Telemetry().Log.SetLevel.
const (
	LogDebug = telemetry.LevelDebug
	LogInfo  = telemetry.LevelInfo
	LogWarn  = telemetry.LevelWarn
	LogError = telemetry.LevelError
	LogOff   = telemetry.LevelOff
)

// Diagnostics endpoints an HTTP host serves alongside its services; see
// DESIGN.md §16. MetricsPath is Prometheus text exposition, TracePath is
// Chrome trace-event JSON (load into ui.perfetto.dev), HealthPath is a
// liveness/readiness probe, FlightPath queries the flight recorder.
const (
	MetricsPath = httpd.MetricsPath
	TracePath   = httpd.TracePath
	HealthPath  = httpd.HealthPath
	FlightPath  = httpd.FlightPath
)

// Telemetry returns the process-wide telemetry hub every layer records
// into. Attach a sink to Telemetry().Tracer to receive spans; read
// counters and the call table through Snapshot.
func Telemetry() *TelemetryHub { return telemetry.Default() }

// Snapshot returns a point-in-time copy of the process-wide telemetry:
// counters, gauges, histograms and the per-service call table. The same
// document is served as JSON at an HTTP host's /debug/wspeer endpoint.
func Snapshot() TelemetrySnapshot { return telemetry.Default().Snapshot() }

// NewSpanCollector returns a bounded in-memory span sink (default
// capacity 4096 for capacity <= 0).
func NewSpanCollector(capacity int) *SpanCollector { return telemetry.NewCollector(capacity) }

// EnableTracing attaches a bounded span ring (default capacity 2048 for
// capacity <= 0) to the process-wide tracer and returns it. Once enabled,
// an HTTP host serves the buffered spans as Chrome trace-event JSON at
// TracePath, and WriteChromeTrace renders them to any writer.
func EnableTracing(capacity int) *SpanRing { return telemetry.Default().EnableTracing(capacity) }

// WritePrometheus renders the process-wide telemetry — counters, gauges,
// histograms, the call table and flight-recorder stats — in Prometheus
// text exposition format. The same document is served at MetricsPath by
// an HTTP host.
func WritePrometheus(w io.Writer) error { return telemetry.Default().WritePrometheus(w) }

// WriteChromeTrace renders spans as Chrome trace-event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev. Pass a SpanRing's Spans()
// or a SpanCollector's Spans().
func WriteChromeTrace(w io.Writer, spans []SpanData) error {
	return telemetry.WriteChromeTrace(w, spans)
}

// Call directions.
const (
	// ClientCall marks an outbound invocation.
	ClientCall = pipeline.ClientCall
	// ServerDispatch marks an inbound dispatch.
	ServerDispatch = pipeline.ServerDispatch
)

// Deadline returns an interceptor that bounds each call with a context
// timeout.
func Deadline(d time.Duration) CallInterceptor { return pipeline.Deadline(d) }

// Retry returns an interceptor that retries failed idempotent calls with
// exponential backoff; see MarkIdempotent and Idempotent.
func Retry(opts RetryOptions) CallInterceptor { return pipeline.Retry(opts) }

// NewCallStats returns an empty statistics collector; install it with
// Client.Use / a binding's Use and read it with Snapshot.
func NewCallStats() *CallStats { return pipeline.NewCallStats() }

// MarkIdempotent flags a call as safe to retry.
func MarkIdempotent(c *PipelineCall) { pipeline.MarkIdempotent(c) }

// Idempotent reports whether a call was flagged with MarkIdempotent.
func Idempotent(c *PipelineCall) bool { return pipeline.Idempotent(c) }

// The resilience layer (DESIGN.md §10): circuit breaking, cross-binding
// failover (Client.NewFailoverInvocation), server-side admission control
// and deterministic fault injection.
type (
	// Breaker is a per-endpoint circuit breaker.
	Breaker = resilience.Breaker
	// BreakerOptions tunes breakers (window, threshold, open timeout).
	BreakerOptions = resilience.BreakerOptions
	// BreakerState is closed, open or half-open.
	BreakerState = resilience.BreakerState
	// BreakerGroup is the per-client endpoint health registry
	// (Client.Breakers); its Interceptor guards single-endpoint calls.
	BreakerGroup = resilience.Group
	// BreakerOpenError is the local refusal an open breaker returns.
	BreakerOpenError = resilience.BreakerOpenError
	// Admission is server-side admission control: a concurrency limit
	// with a bounded, deadline-aware wait queue and load shedding.
	Admission = resilience.Admission
	// AdmissionOptions tunes admission control.
	AdmissionOptions = resilience.AdmissionOptions
	// AdmissionStats is a point-in-time admission snapshot.
	AdmissionStats = resilience.AdmissionStats
	// OverloadError is what shed callers receive (HTTP 503 + Retry-After
	// on the standard binding).
	OverloadError = resilience.OverloadError
	// FaultInjector injects seeded, reproducible faults into transports,
	// pipelines and netsim links.
	FaultInjector = resilience.Injector
	// FaultInjectorOptions configures a FaultInjector (virtual clock).
	FaultInjectorOptions = resilience.InjectorOptions
	// FaultPlan describes the faults to inject for matching endpoints.
	FaultPlan = resilience.FaultPlan
	// RetryBudget is a client-wide retransmission token bucket shared by
	// Retry and Hedge (DESIGN.md §14): retries and hedges spend tokens,
	// successes credit a fraction back, so retransmission volume tracks
	// the success rate and cannot storm a failing server.
	RetryBudget = resilience.RetryBudget
	// RetryBudgetOptions tunes a RetryBudget (floor, cap, credit ratio).
	RetryBudgetOptions = resilience.BudgetOptions
	// RetryBudgetStats is a point-in-time budget snapshot.
	RetryBudgetStats = resilience.BudgetStats
	// HedgeOptions tunes the Hedge interceptor (threshold, fan-out,
	// budget).
	HedgeOptions = pipeline.HedgeOptions
	// InvocationHedgeOptions tunes a hedged invocation built with
	// Client.NewHedgedInvocation / NewHedgedInvocationFor.
	InvocationHedgeOptions = core.HedgeOptions
)

// Circuit breaker states.
const (
	// BreakerClosed: calls flow normally.
	BreakerClosed = resilience.BreakerClosed
	// BreakerOpen: calls are refused locally.
	BreakerOpen = resilience.BreakerOpen
	// BreakerHalfOpen: probe calls decide between re-closing and
	// re-opening.
	BreakerHalfOpen = resilience.BreakerHalfOpen
)

// NewAdmission returns a server-side admission controller; install it via
// HTTPOptions.Admission (or engine.SetAdmission for other hosts).
func NewAdmission(opts AdmissionOptions) *Admission { return resilience.NewAdmission(opts) }

// NewBreakerGroup returns a standalone endpoint breaker registry. The
// per-client registry (Client.Breakers) is created automatically; use
// Client.ConfigureBreakers to tune it.
func NewBreakerGroup(opts BreakerOptions) *BreakerGroup { return resilience.NewGroup(opts) }

// NewFaultInjector returns a deterministic fault injector drawing from
// the seed.
func NewFaultInjector(seed int64, opts ...FaultInjectorOptions) *FaultInjector {
	return resilience.NewInjector(seed, opts...)
}

// NewRetryBudget returns a standalone retransmission budget; the
// per-client budget is installed with Client.ConfigureRetryBudget.
func NewRetryBudget(opts RetryBudgetOptions) *RetryBudget { return resilience.NewRetryBudget(opts) }

// Hedge returns an interceptor that races a second attempt against a slow
// primary, first success wins; see pipeline.Hedge for the semantics and
// Client.NewHedgedInvocation for the endpoint-aware form.
func Hedge(opts HedgeOptions) CallInterceptor { return pipeline.Hedge(opts) }

// DeadlineHeader is the HTTP header carrying the caller's absolute
// deadline (microseconds since the Unix epoch) across the wire, so a
// saturated server can drop requests whose caller has already given up.
const DeadlineHeader = transport.DeadlineHeader

// The resolution-and-scheduling layer (DESIGN.md §13): a per-client
// discovery resolution cache that takes repeated Locate fan-outs off the
// hot path (Client.LocateCached, Client.NewFailoverInvocationFor), and a
// bounded invocation scheduler behind InvokeAsync and the scatter-gather
// Client.InvokeMany.
type (
	// ResolutionCache memoizes query identity → located services with
	// TTL, stale-while-revalidate refresh, negative caching and
	// singleflight collapsing (Client.ResolutionCache).
	ResolutionCache = resolve.Cache
	// ResolutionCacheOptions tunes the cache (TTL, stale window,
	// negative TTL, capacity); install with
	// Client.ConfigureResolutionCache.
	ResolutionCacheOptions = resolve.Options
	// ResolutionCacheStats is a point-in-time cache counter snapshot.
	ResolutionCacheStats = resolve.Stats
	// QueryCacheKeyer lets a custom ServiceQuery define its own
	// resolution-cache identity.
	QueryCacheKeyer = core.CacheKeyer
	// SchedulerOptions tunes the client's bounded invocation scheduler
	// (concurrency cap, queue bound, queue timeout); install with
	// Client.ConfigureScheduler.
	SchedulerOptions = core.SchedulerOptions
	// SchedulerStats is a point-in-time scheduler snapshot
	// (Client.SchedulerStats).
	SchedulerStats = core.SchedulerStats
	// ManyResult is one endpoint's outcome within Client.InvokeMany.
	ManyResult = core.ManyResult
)

// QueryKey canonicalizes a ServiceQuery into its resolution-cache
// identity; queries with equal keys share a cache line.
func QueryKey(q ServiceQuery) string { return core.QueryKey(q) }

// The message-exchange layer (DESIGN.md §15): every invocation is a
// correlated exchange of one-way messages (paper §IV-B). Plain Invoke is
// the anonymous request/response fast path; Invocation.InvokeOneWay sends
// fire-and-forget, and Invocation.InvokeCallback has the reply delivered
// as a separate message to a client-hosted endpoint, correlated by
// wsa:RelatesTo in a bounded table.
type (
	// ExchangeOptions configures the client side of the exchange layer;
	// install with Client.ConfigureExchange.
	ExchangeOptions = core.ExchangeOptions
	// ExchangeTableOptions bounds the callback correlation table
	// (capacity, TTL, duplicate-suppression window).
	ExchangeTableOptions = exchange.TableOptions
	// ExchangeTableStats is a point-in-time correlation-table counter
	// snapshot (Client.ExchangeStats).
	ExchangeTableStats = exchange.TableStats
	// PendingReply is the application's handle on a callback
	// invocation's decoupled reply (Invocation.InvokeCallback).
	PendingReply = core.PendingReply
	// ReplyEndpoint is a live client-hosted endpoint receiving decoupled
	// replies — an HTTP callback route, a P2PS input pipe, a mem://
	// handler.
	ReplyEndpoint = core.ReplyEndpoint
	// CallbackHoster marks invokers able to host a reply endpoint on
	// their substrate, which is what enables InvokeCallback for their
	// schemes.
	CallbackHoster = core.CallbackHoster
	// ExchangeExpiredError reports a callback whose reply did not arrive
	// within its TTL.
	ExchangeExpiredError = exchange.ExpiredError
	// EndpointReference is a WS-Addressing endpoint reference.
	EndpointReference = wsaddr.EndpointReference
	// MessageHeaders is the WS-Addressing 2004 header block.
	MessageHeaders = wsaddr.MessageHeaders
)

// AnonymousAddress is the WS-Addressing anonymous role URI: a ReplyTo of
// this address means "respond on the transport back channel".
const AnonymousAddress = wsaddr.Anonymous

// NewEndpointReference returns an EPR for a plain address.
func NewEndpointReference(address string) *EndpointReference {
	return wsaddr.NewEndpointReference(address)
}

// Service definition and invocation payloads (messaging engine).
type (
	// ServiceDef declares a deployable service.
	ServiceDef = engine.ServiceDef
	// OperationDef declares one operation.
	OperationDef = engine.OperationDef
	// Param is one named invocation input.
	Param = engine.Param
	// Result is a decoded-on-demand invocation result.
	Result = engine.Result
	// Fault is a SOAP fault; it implements error.
	Fault = soap.Fault
	// Definitions is a parsed or generated WSDL document.
	Definitions = wsdl.Definitions
)

// Bindings.
type (
	// Binding is the contract every substrate binding implements; attach
	// one with Peer.AttachBinding.
	Binding = core.Binding
	// BindingComponents is the pluggable-component bundle a binding
	// contributes (deployer, publishers, locators, invokers).
	BindingComponents = core.Components
	// BindingRegistry keys live bindings by name and endpoint scheme.
	BindingRegistry = binding.Registry
	// HTTPBinding is the standard implementation (paper §IV-A).
	HTTPBinding = httpbind.Binding
	// HTTPOptions configures the standard binding.
	HTTPOptions = httpbind.Options
	// P2PSBinding is the P2PS implementation (paper §IV-B).
	P2PSBinding = p2psbind.Binding
	// P2PSOptions configures the P2PS binding.
	P2PSOptions = p2psbind.Options
	// P2PSPeer is the underlying peer-to-peer node.
	P2PSPeer = p2ps.Peer
	// P2PSConfig configures a P2PS node.
	P2PSConfig = p2ps.Config
	// P2PSTransport attaches a P2PS node to a network.
	P2PSTransport = p2ps.Transport
	// InMemBinding hosts services on a process-local network (tests,
	// simulations, single-process compositions).
	InMemBinding = inmembind.Binding
	// InMemOptions configures the in-memory binding.
	InMemOptions = inmembind.Options
	// InMemDirectory is the in-memory binding's shared service registry.
	InMemDirectory = inmembind.Directory
	// InMemNetwork carries mem:// invocations between in-memory bindings.
	InMemNetwork = transport.InMemNetwork
	// UDDIRegistry is the in-process registry (host it with uddid or
	// embed it).
	UDDIRegistry = uddi.Registry
	// UDDIBusinessService is a registry record.
	UDDIBusinessService = uddi.BusinessService
	// UDDIBindingTemplate is one access point of a registry record.
	UDDIBindingTemplate = uddi.BindingTemplate
	// UDDIKeyedReference categorizes a record within a taxonomy.
	UDDIKeyedReference = uddi.KeyedReference
	// UDDITModel is a reusable technical model (taxonomy or interface
	// fingerprint).
	UDDITModel = uddi.TModel
	// UDDIFindQuery selects registry records.
	UDDIFindQuery = uddi.FindQuery
	// UDDIClient invokes a remote registry service.
	UDDIClient = uddi.Client
)

// NewUDDIClient returns a client for the registry service at endpoint,
// using the HTTP transport.
func NewUDDIClient(endpoint string) (*UDDIClient, error) {
	reg := transport.NewRegistry()
	reg.Register(transport.NewHTTPTransport())
	return uddi.NewClient(endpoint, reg)
}

// Workflow composition (the Triana capability, paper §V).
type (
	// Workflow is an executable DAG of service invocations.
	Workflow = flow.Workflow
	// WorkflowStep is one node of a workflow.
	WorkflowStep = flow.Step
	// WorkflowSource supplies one step input.
	WorkflowSource = flow.Source
	// WorkflowStepEvent reports a step's completion.
	WorkflowStepEvent = flow.StepEvent
)

// NewWorkflow returns an empty workflow.
func NewWorkflow(name string) *Workflow { return flow.New(name) }

// ConstInput supplies a fixed workflow input.
func ConstInput(v interface{}) WorkflowSource { return flow.Const(v) }

// StepOutput wires a prior step's result part into an input; proto is a
// value of the expected Go type.
func StepOutput(step, part string, proto interface{}) WorkflowSource {
	return flow.Output(step, part, proto)
}

// NewPeer returns a peer with empty client and server sides; attach one or
// more bindings to populate them.
func NewPeer() *Peer { return core.NewPeer() }

// P constructs a named invocation parameter.
func P(name string, value interface{}) Param { return engine.P(name, value) }

// NewQueuedListener wraps a listener with an event queue so slow consumers
// do not block protocol goroutines.
func NewQueuedListener(inner PeerMessageListener, capacity int) *QueuedListener {
	return core.NewQueuedListener(inner, capacity)
}

// NewHTTPBinding builds the standard (HTTP/UDDI) binding.
func NewHTTPBinding(opts HTTPOptions) (*HTTPBinding, error) { return httpbind.New(opts) }

// NewP2PSBinding builds the P2PS binding over an existing P2PS peer.
func NewP2PSBinding(opts P2PSOptions) (*P2PSBinding, error) { return p2psbind.New(opts) }

// NewInMemBinding builds the in-memory binding. Share one InMemNetwork and
// one InMemDirectory between bindings that should reach each other.
func NewInMemBinding(opts InMemOptions) (*InMemBinding, error) { return inmembind.New(opts) }

// NewInMemNetwork returns an empty in-memory network.
func NewInMemNetwork() *InMemNetwork { return transport.NewInMemNetwork() }

// NewInMemDirectory returns an empty in-memory service directory.
func NewInMemDirectory() *InMemDirectory { return inmembind.NewDirectory() }

// NewBindingRegistry returns an empty binding registry.
func NewBindingRegistry() *BindingRegistry { return binding.NewRegistry() }

// ComposeClient builds a peer from explicitly mixed binding components —
// the paper's "P2PS client using the UDDI locator" made first-class:
//
//	mixed, _ := wspeer.ComposeClient(wspeer.BindingComponents{
//	    Locators: []wspeer.ServiceLocator{httpB.Locator()},
//	    Invokers: []wspeer.Invoker{p2psB.Invoker()},
//	})
func ComposeClient(parts BindingComponents) (*Peer, error) { return binding.ComposeClient(parts) }

// NewP2PSPeer creates a P2PS node.
func NewP2PSPeer(cfg P2PSConfig) (*P2PSPeer, error) { return p2ps.NewPeer(cfg) }

// NewTCPP2PSPeer creates a P2PS node listening on a TCP address
// ("127.0.0.1:0" for ephemeral), attached to the given seed rendezvous.
func NewTCPP2PSPeer(listen string, rendezvous bool, seeds ...string) (*P2PSPeer, error) {
	tr, err := p2ps.NewTCPTransport(listen)
	if err != nil {
		return nil, err
	}
	return p2ps.NewPeer(p2ps.Config{Transport: tr, Rendezvous: rendezvous, Seeds: seeds})
}

// NewTCPTransport creates a TCP transport for a P2PS node, for use with
// NewP2PSPeer and a full P2PSConfig.
func NewTCPTransport(listen string) (P2PSTransport, error) {
	return p2ps.NewTCPTransport(listen)
}

// NewUDDIRegistry returns an empty in-process registry.
func NewUDDIRegistry() *UDDIRegistry { return uddi.NewRegistry() }

// UDDIServiceDef exposes a registry as a deployable WSPeer service, so a
// registry node is itself just another WSPeer-hosted service.
func UDDIServiceDef(r *UDDIRegistry) ServiceDef { return uddi.ServiceDef(r) }

// ParseP2PSURI parses a p2ps:// endpoint URI.
func ParseP2PSURI(s string) (P2PSURI, error) { return core.ParseP2PSURI(s) }

// ServiceFromObject exposes every exported method of obj as an operation —
// the paper's stateful-object service (§III point 3).
func ServiceFromObject(name string, obj interface{}) (ServiceDef, error) {
	return engine.FromObject(name, obj)
}
