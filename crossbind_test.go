package wspeer_test

// Cross-binding composition tests: the paper's mix-and-match claim (§IV,
// "a P2PS client could use the UDDI enabled ServiceLocator defined in the
// standard implementation") exercised in both directions with
// binding.ComposeClient — a UDDI locator paired with a P2PS invoker over a
// real-time overlay, and a P2PS locator paired with an HTTP invoker with
// discovery running over the netsim discrete-event network.

import (
	"context"
	"testing"
	"time"

	"wspeer/internal/binding"
	"wspeer/internal/binding/httpbind"
	"wspeer/internal/binding/p2psbind"
	"wspeer/internal/core"
	"wspeer/internal/engine"
	"wspeer/internal/httpd"
	"wspeer/internal/netsim"
	"wspeer/internal/p2ps"
	"wspeer/internal/transport"
	"wspeer/internal/uddi"
)

func startUDDIRegistry(t *testing.T) string {
	t.Helper()
	reg := uddi.NewRegistry()
	host := httpd.New(engine.New(), httpd.Options{})
	t.Cleanup(func() { host.Close() })
	endpoint, err := host.Deploy(uddi.ServiceDef(reg))
	if err != nil {
		t.Fatal(err)
	}
	return endpoint
}

func crossEchoDef(name string) engine.ServiceDef {
	return engine.ServiceDef{
		Name: name,
		Operations: []engine.OperationDef{
			{Name: "echoString", Func: func(s string) string { return "cross:" + s }, ParamNames: []string{"msg"}},
		},
	}
}

// TestComposeUDDILocatorP2PSInvoker publishes a P2PS-deployed service to a
// UDDI registry, then builds a client from the UDDI locator and the P2PS
// invoker: the service is found through the registry (which records its
// p2ps:// endpoint and inline WSDL) and called over pipes.
func TestComposeUDDILocatorP2PSInvoker(t *testing.T) {
	ctx := context.Background()
	uddiEndpoint := startUDDIRegistry(t)

	// Real-time P2PS overlay with one rendezvous.
	net := p2ps.NewLocalNetwork()
	rdv, err := p2ps.NewPeer(p2ps.Config{Transport: net.NewEndpoint(), Rendezvous: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rdv.Close() })
	newP2PSBinding := func() *p2psbind.Binding {
		t.Helper()
		pp, err := p2ps.NewPeer(p2ps.Config{Transport: net.NewEndpoint(), Seeds: []string{rdv.Addr()}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pp.Close() })
		b, err := p2psbind.New(p2psbind.Options{Peer: pp, DiscoveryTimeout: 300 * time.Millisecond, ReplyTimeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Close() })
		return b
	}

	// Provider: deployed over P2PS, published to UDDI as well — the http
	// binding donates only its publisher.
	providerP2PS := newP2PSBinding()
	providerHTTP, err := httpbind.New(httpbind.Options{UDDIEndpoint: uddiEndpoint})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { providerHTTP.Close() })
	provider := core.NewPeer()
	if err := provider.AttachBinding(providerP2PS); err != nil {
		t.Fatal(err)
	}
	provider.Server().AddPublisher(providerHTTP.Publisher())
	if _, err := provider.Server().DeployAndPublish(ctx, crossEchoDef("CrossEchoA")); err != nil {
		t.Fatal(err)
	}

	// Mixed client: locate via UDDI, invoke via P2PS.
	consumerP2PS := newP2PSBinding()
	consumerHTTP, err := httpbind.New(httpbind.Options{UDDIEndpoint: uddiEndpoint})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { consumerHTTP.Close() })
	mixed, err := binding.ComposeClient(binding.Components{
		Locators: []core.ServiceLocator{consumerHTTP.Locator()},
		Invokers: []core.Invoker{consumerP2PS.Invoker()},
	})
	if err != nil {
		t.Fatal(err)
	}

	info, err := mixed.Client().LocateOne(ctx, core.NameQuery{Name: "CrossEchoA"})
	if err != nil {
		t.Fatal(err)
	}
	if info.Locator != "uddi" {
		t.Fatalf("locator = %q, want uddi", info.Locator)
	}
	if got := transport.SchemeOf(info.Endpoint); got != core.P2PSScheme {
		t.Fatalf("endpoint scheme = %q (%s), want %s", got, info.Endpoint, core.P2PSScheme)
	}

	inv, err := mixed.Client().NewInvocation(info)
	if err != nil {
		t.Fatal(err)
	}
	// The invoker has no advert in hand (the info came from UDDI) and
	// falls back to in-network discovery; retry across advert propagation.
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := inv.Invoke(ctx, "echoString", engine.P("msg", "uddi+p2ps"))
		if err == nil {
			if got, err := res.String("return"); err != nil || got != "cross:uddi+p2ps" {
				t.Fatalf("invoke = %q, %v", got, err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("invoke never succeeded: %v", err)
		}
	}
}

// pumpSim drives the discrete-event simulator from a background goroutine
// so real-time peers see simulated delivery continuously.
func pumpSim(t *testing.T, sim *netsim.Simulator) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		for {
			if sim.Run(100) == 0 {
				select {
				case <-done:
					return
				default:
					time.Sleep(time.Millisecond)
				}
			}
		}
	}()
	t.Cleanup(func() { close(done) })
}

// TestComposeP2PSLocatorHTTPInvoker deploys a service over HTTP, has the
// P2PS binding advertise it as a foreign publication over a netsim
// overlay (endpoint attribute + definition pipe, no request pipe), then
// builds a client from the P2PS locator and the HTTP invoker: discovery
// runs over simulated pipes, the invocation over a real socket.
func TestComposeP2PSLocatorHTTPInvoker(t *testing.T) {
	ctx := context.Background()
	sim := netsim.New(42)
	pumpSim(t, sim)

	newSimPeer := func(name string, rendezvous bool, seeds []string) *p2ps.Peer {
		t.Helper()
		ep, err := sim.NewEndpoint(name)
		if err != nil {
			t.Fatal(err)
		}
		pp, err := p2ps.NewPeer(p2ps.Config{Name: name, Transport: ep, Rendezvous: rendezvous, Seeds: seeds})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pp.Close() })
		return pp
	}
	rdv := newSimPeer("rdv", true, nil)
	seeds := []string{rdv.Addr()}

	newP2PSBinding := func(name string) *p2psbind.Binding {
		t.Helper()
		b, err := p2psbind.New(p2psbind.Options{
			Peer:             newSimPeer(name, false, seeds),
			DiscoveryTimeout: 500 * time.Millisecond,
			ReplyTimeout:     5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Close() })
		return b
	}

	// Provider: deployed over HTTP (no UDDI), advertised over P2PS — the
	// p2ps binding donates only its publisher, taking the foreign path.
	providerHTTP, err := httpbind.New(httpbind.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { providerHTTP.Close() })
	providerP2PS := newP2PSBinding("prov")
	provider := core.NewPeer()
	if err := provider.AttachBinding(providerHTTP); err != nil {
		t.Fatal(err)
	}
	provider.Server().AddPublisher(providerP2PS.Publisher())
	dep, err := provider.Server().DeployAndPublish(ctx, crossEchoDef("CrossEchoB"))
	if err != nil {
		t.Fatal(err)
	}
	if got := transport.SchemeOf(dep.Endpoint); got != "http" {
		t.Fatalf("deployed scheme = %q", got)
	}

	// Mixed client: locate via P2PS discovery, invoke via HTTP.
	consumerP2PS := newP2PSBinding("cons")
	consumerHTTP, err := httpbind.New(httpbind.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { consumerHTTP.Close() })
	mixed, err := binding.ComposeClient(binding.Components{
		Locators: []core.ServiceLocator{consumerP2PS.Locator()},
		Invokers: []core.Invoker{consumerHTTP.Invoker()},
	})
	if err != nil {
		t.Fatal(err)
	}

	var info *core.ServiceInfo
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, err = mixed.Client().LocateOne(ctx, core.NameQuery{Name: "CrossEchoB"})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("locate never succeeded: %v", err)
		}
	}
	if info.Locator != "p2ps" {
		t.Fatalf("locator = %q, want p2ps", info.Locator)
	}
	if got := transport.SchemeOf(info.Endpoint); got != "http" {
		t.Fatalf("endpoint scheme = %q (%s), want http", got, info.Endpoint)
	}
	if info.Endpoint != dep.Endpoint {
		t.Fatalf("advertised endpoint %q != deployed %q", info.Endpoint, dep.Endpoint)
	}

	inv, err := mixed.Client().NewInvocation(info)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inv.Invoke(ctx, "echoString", engine.P("msg", "p2ps+http"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := res.String("return"); err != nil || got != "cross:p2ps+http" {
		t.Fatalf("invoke = %q, %v", got, err)
	}
}
