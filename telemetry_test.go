package wspeer_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"

	"wspeer"
)

// inMemPair stands up a provider and consumer peer sharing one in-memory
// substrate, with the named echo service deployed and located.
func inMemPair(t *testing.T, service string) *wspeer.Invocation {
	t.Helper()
	ctx := context.Background()
	net := wspeer.NewInMemNetwork()
	dir := wspeer.NewInMemDirectory()

	provider := wspeer.NewPeer()
	pb, err := wspeer.NewInMemBinding(wspeer.InMemOptions{Network: net, Directory: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pb.Close() })
	if err := provider.AttachBinding(pb); err != nil {
		t.Fatal(err)
	}
	if _, err := provider.Server().DeployAndPublish(ctx, echoDef(service, "mem")); err != nil {
		t.Fatal(err)
	}

	consumer := wspeer.NewPeer()
	cb, err := wspeer.NewInMemBinding(wspeer.InMemOptions{Network: net, Directory: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cb.Close() })
	if err := consumer.AttachBinding(cb); err != nil {
		t.Fatal(err)
	}
	info, err := consumer.Client().LocateOne(ctx, wspeer.NameQuery{Name: service})
	if err != nil {
		t.Fatal(err)
	}
	inv, err := consumer.Client().NewInvocation(info)
	if err != nil {
		t.Fatal(err)
	}
	return inv
}

// TestTelemetryTraceLinkage proves the trace survives the wire: over the
// real HTTP binding, the server-side dispatch span must be the child of
// the client-side invocation span, in the same trace.
func TestTelemetryTraceLinkage(t *testing.T) {
	ctx := context.Background()
	registryURL := startRegistry(t)

	provider := wspeer.NewPeer()
	hb, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{UDDIEndpoint: registryURL})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hb.Close() })
	if err := provider.AttachBinding(hb); err != nil {
		t.Fatal(err)
	}
	if _, err := provider.Server().DeployAndPublish(ctx, echoDef("TraceEcho", "http")); err != nil {
		t.Fatal(err)
	}

	consumer := wspeer.NewPeer()
	cb, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{UDDIEndpoint: registryURL})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cb.Close() })
	if err := consumer.AttachBinding(cb); err != nil {
		t.Fatal(err)
	}
	info, err := consumer.Client().LocateOne(ctx, wspeer.NameQuery{Name: "TraceEcho"})
	if err != nil {
		t.Fatal(err)
	}
	inv, err := consumer.Client().NewInvocation(info)
	if err != nil {
		t.Fatal(err)
	}

	col := wspeer.NewSpanCollector(0)
	prev := wspeer.Telemetry().Tracer.SetSink(col)
	t.Cleanup(func() { wspeer.Telemetry().Tracer.SetSink(prev) })

	if res, err := inv.Invoke(ctx, "echo", wspeer.P("msg", "linked")); err != nil {
		t.Fatal(err)
	} else if got, _ := res.String("return"); got != "http:linked" {
		t.Fatalf("echo = %q", got)
	}

	spans := col.ByService("TraceEcho")
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(spans), spans)
	}
	srv, cli := spans[0], spans[1]
	if srv.Name != "server.dispatch" || cli.Name != "client.invoke" {
		t.Fatalf("span sequence = [%s, %s]", srv.Name, cli.Name)
	}
	if srv.TraceID != cli.TraceID {
		t.Fatalf("spans in different traces: %x vs %x", srv.TraceID, cli.TraceID)
	}
	if srv.ParentID != cli.SpanID {
		t.Fatalf("dispatch span parent = %x, want client span %x", srv.ParentID, cli.SpanID)
	}
}

// TestTelemetryConcurrent hammers the spine from concurrent clients with
// tracing enabled while snapshots are read — the -race exercise for the
// meter registry, call table, tracer and collector together.
func TestTelemetryConcurrent(t *testing.T) {
	ctx := context.Background()
	const workers = 8
	const callsPerWorker = 25

	invs := make([]*wspeer.Invocation, workers)
	for i := range invs {
		invs[i] = inMemPair(t, fmt.Sprintf("ConcEcho%d", i))
	}

	col := wspeer.NewSpanCollector(0)
	prev := wspeer.Telemetry().Tracer.SetSink(col)
	t.Cleanup(func() { wspeer.Telemetry().Tracer.SetSink(prev) })

	before := wspeer.Snapshot()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	// A concurrent snapshot reader races every instrument on purpose.
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				wspeer.Snapshot()
			}
		}
	}()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < callsPerWorker; j++ {
				res, err := invs[i].Invoke(ctx, "echo", wspeer.P("msg", "c"))
				if err != nil {
					t.Errorf("worker %d call %d: %v", i, j, err)
					return
				}
				if got, _ := res.String("return"); got != "mem:c" {
					t.Errorf("worker %d call %d = %q", i, j, got)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	<-readerDone

	after := wspeer.Snapshot()
	for i := 0; i < workers; i++ {
		svc := fmt.Sprintf("ConcEcho%d", i)
		cli := wspeer.Telemetry().Calls.Service(svc, "client")
		srv := wspeer.Telemetry().Calls.Service(svc, "server")
		if cli.Calls < callsPerWorker || srv.Calls < callsPerWorker {
			t.Fatalf("%s rows: client %d, server %d, want >= %d", svc, cli.Calls, srv.Calls, callsPerWorker)
		}
		if cli.Failures != 0 || srv.Failures != 0 {
			t.Fatalf("%s recorded failures on clean calls", svc)
		}
	}
	grew := after.Counters["transport.inmem.calls"] - before.Counters["transport.inmem.calls"]
	if grew < workers*callsPerWorker {
		t.Fatalf("transport.inmem.calls grew by %d, want >= %d", grew, workers*callsPerWorker)
	}
	// Every call produced a client and a server span.
	if col.Len() < 2*workers*callsPerWorker {
		t.Fatalf("collected %d spans, want >= %d", col.Len(), 2*workers*callsPerWorker)
	}
}

// TestDebugEndpoint curls the host's /debug/wspeer endpoint and checks the
// JSON document carries the spine's call table and the engine stats.
func TestDebugEndpoint(t *testing.T) {
	ctx := context.Background()
	registryURL := startRegistry(t)

	peer := wspeer.NewPeer()
	hb, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{UDDIEndpoint: registryURL})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hb.Close() })
	if err := peer.AttachBinding(hb); err != nil {
		t.Fatal(err)
	}
	dep, err := peer.Server().DeployAndPublish(ctx, echoDef("DebugEcho", "dbg"))
	if err != nil {
		t.Fatal(err)
	}
	info, err := peer.Client().LocateOne(ctx, wspeer.NameQuery{Name: "DebugEcho"})
	if err != nil {
		t.Fatal(err)
	}
	inv, err := peer.Client().NewInvocation(info)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inv.Invoke(ctx, "echo", wspeer.P("msg", "x")); err != nil {
		t.Fatal(err)
	}

	// The service endpoint is http://host/services/DebugEcho; the debug
	// endpoint hangs off the same listener.
	base := dep.Endpoint[:len(dep.Endpoint)-len("/services/DebugEcho")]
	resp, err := http.Get(base + "/debug/wspeer")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/wspeer = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Telemetry wspeer.TelemetrySnapshot `json:"telemetry"`
		Engine    struct {
			Requests int64 `json:"Requests"`
		} `json:"engine"`
		Overload map[string]int64 `json:"overload"`
		Services []string         `json:"services"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("debug endpoint is not JSON: %v\n%s", err, body)
	}
	// The overload-control section surfaces the adaptive admission limit,
	// retry-budget state and hedge counters as one document.
	for _, key := range []string{
		"admission_limit", "budget_balance_milli", "budget_draws", "budget_denied",
		"hedges_launched", "hedge_wins", "hedges_denied",
		"retries_budget_denied", "deadlines_carried", "deadlines_dropped",
	} {
		if _, ok := doc.Overload[key]; !ok {
			t.Fatalf("overload section missing %q: %s", key, body)
		}
	}
	if doc.Engine.Requests < 1 {
		t.Fatalf("engine.Requests = %d, want >= 1", doc.Engine.Requests)
	}
	if len(doc.Services) != 1 || doc.Services[0] != "DebugEcho" {
		t.Fatalf("services = %v", doc.Services)
	}
	foundRow := false
	for _, row := range doc.Telemetry.Calls {
		if row.Service == "DebugEcho" && row.Dir == "server" && row.Calls >= 1 {
			foundRow = true
		}
	}
	if !foundRow {
		t.Fatalf("call table has no server row for DebugEcho: %+v", doc.Telemetry.Calls)
	}
	if doc.Telemetry.Counters["httpd.requests"] < 1 {
		t.Fatalf("httpd.requests counter = %d", doc.Telemetry.Counters["httpd.requests"])
	}
}
